"""Idempotency detection and buffer-management logic (Sections 3.1-3.2).

The detector observes every (non-ignored) memory access and decides whether
it may proceed, must be absorbed by the Write-back Buffer, or requires a
checkpoint first.  A write to a read-dominated address is an idempotency
violation; a full tracking buffer is treated the same way (Section 3.1.1).

Decisions returned to the caller (the intermittent simulator or the live
ISS attachment):

* ``PROCEED`` — the access goes through; writes commit directly to
  non-volatile memory (the address is write-dominated, untracked-but-safe,
  or a value-preserving "false write").
* ``PROCEED_WBB`` — the write was captured by the volatile Write-back
  Buffer; non-volatile memory keeps the original value.
* ``CHECKPOINT`` — a checkpoint must be taken *before* this access; after
  the buffers reset, re-issue the access (it will then proceed).
* ``CHECKPOINT_THEN_WRITE`` — text-segment write under ignore-TEXT: take a
  checkpoint, then commit the write directly without re-consulting the
  detector (re-issuing would checkpoint forever).
"""

from array import array
from bisect import bisect_left
from typing import Dict, Optional, Tuple

from repro.core import cext
from repro.core.buffers import (
    AddressPrefixBuffer,
    ReadFirstBuffer,
    WriteBackBuffer,
    WriteFirstBuffer,
)
from repro.core.config import ClankConfig
from repro.obs.events import BufferOverflow

PROCEED = 0
PROCEED_WBB = 1
CHECKPOINT = 2
CHECKPOINT_THEN_WRITE = 3

#: Detector/replay policy revision, folded into every content-addressed
#: artifact key whose value depends on checkpoint-policy *semantics*
#: (section enumerations, watermark families, cached simulation
#: results).  Bump it whenever a policy fix changes what any of those
#: artifacts would contain for the same inputs, so warm caches from
#: older builds can never serve stale pre-fix data.  Rev 2: WBB-owned
#: writes update in place during latest-checkpoint untracked mode
#: instead of consulting the false-write test or checkpointing.
POLICY_REV = 2

#: A detector decision: (action, checkpoint cause or None).
Decision = Tuple[int, Optional[str]]

_PROCEED: Decision = (PROCEED, None)
_PROCEED_WBB: Decision = (PROCEED_WBB, None)


class ChainScratch:
    """Flat membership arrays for the straight-line section scan.

    One slot per dense word (or prefix) id; a slot is a member of the
    current section's buffer iff it holds the current generation stamp.
    Bumping the stamp empties all four buffers in O(1), so the scan never
    pays a clear proportional to the footprint.
    """

    __slots__ = ("gen", "rf", "wf", "wbb", "apb")

    def __init__(self, n_words: int, n_prefixes: int):
        self.gen = 0
        self.rf = [0] * n_words
        self.wf = [0] * n_words
        self.wbb = [0] * n_words
        self.apb = [0] * n_prefixes


class IdempotencyDetector:
    """Clank's detector + management logic over the four buffers.

    Args:
        config: Buffer composition and policy-optimization setting.
        text_word_range: Half-open word-address range of the text segment;
            required only when ``ignore_text`` is enabled.
        recorder: Optional :class:`repro.obs.recorder.Recorder` receiving a
            :class:`~repro.obs.events.BufferOverflow` event whenever a
            buffer hits a full condition (even tolerated ones under
            no-WF-overflow).  ``None`` keeps the decision paths free of any
            recording work beyond one attribute check on the (rare)
            full-condition branches.
    """

    def __init__(
        self,
        config: ClankConfig,
        text_word_range: Optional[Tuple[int, int]] = None,
        recorder=None,
    ):
        self.config = config
        self.opts = config.optimizations
        self.rf = ReadFirstBuffer(config.rf_entries)
        self.wf = WriteFirstBuffer(config.wf_entries)
        self.wbb = WriteBackBuffer(config.wbb_entries)
        self.apb = AddressPrefixBuffer(config.apb_entries, config.prefix_low_bits)
        if self.opts.ignore_text and text_word_range is None:
            text_word_range = (0, 0)
        self._text_lo, self._text_hi = text_word_range or (0, 0)
        # The policy flags are consulted on every access of every replay;
        # flatten them out of the nested dataclass so the decision paths do
        # a single attribute fetch.
        self._ignore_text = self.opts.ignore_text
        self._ignore_false_writes = self.opts.ignore_false_writes
        self._remove_duplicates = self.opts.remove_duplicates
        self._no_wf_overflow = self.opts.no_wf_overflow
        self._latest_checkpoint = self.opts.latest_checkpoint
        # Direct references to the buffers' backing containers: membership
        # tests run once or twice per replayed access, and a set/dict probe
        # is several times cheaper than a __contains__ method call.  All
        # buffer operations (insert/discard/clear/drain/restore) mutate
        # these containers in place, so the references never go stale.
        self._rf_set = self.rf._addrs
        self._wf_set = self.wf._addrs
        self._wbb_map = self.wbb._entries
        self._rf_capacity = self.rf.capacity
        self._wf_capacity = self.wf.capacity
        self._apb_enabled = self.apb.capacity > 0
        self.recorder = recorder
        #: Latest-checkpoint mode: tracking stopped after a read-side fill;
        #: reads pass untracked, the next write checkpoints (Section 3.2.5).
        self.untracked = False

    # ------------------------------------------------------------------ #
    # Access handling.
    # ------------------------------------------------------------------ #

    def on_read(self, waddr: int) -> Decision:
        """Decide a read of word ``waddr``."""
        if self.untracked:
            return _PROCEED
        if self._ignore_text and self._text_lo <= waddr < self._text_hi:
            return _PROCEED
        rf_set = self._rf_set
        if waddr in rf_set or waddr in self._wbb_map or waddr in self._wf_set:
            return _PROCEED
        # A fresh read-dominated address must enter the Read-first Buffer.
        if len(rf_set) >= self._rf_capacity:
            return self._read_side_full("rf_full", waddr)
        if self._apb_enabled and not self.apb.admit(waddr):
            return self._read_side_full("apb_full", waddr)
        rf_set.add(waddr)
        return _PROCEED

    def on_write(self, waddr: int, new_value: int, cur_value: int) -> Decision:
        """Decide a write of word value ``new_value`` to ``waddr``.

        Args:
            waddr: Target word address.
            new_value: Word value the write produces.
            cur_value: Word value the program currently observes there (the
                Write-back Buffer overlay over non-volatile memory) — used by
                the ignore-false-writes optimization.
        """
        wbb_map = self._wbb_map
        if waddr in wbb_map:
            # Address owned by the Write-back Buffer; update in place.
            # Checked before the untracked escape: the WBB's address
            # comparators match every store, and a buffered write reaches
            # non-volatile memory only at the next checkpoint flush, so
            # the in-place update is always safe.  Routing an owned write
            # through the untracked false-write test instead would compare
            # against the buffered (not-yet-durable) value and could pass
            # a value that differs from NV straight through to NV with no
            # covering checkpoint — breaking rollback.  (Text addresses
            # never enter the WBB under ignore-text, so this cannot
            # shadow the text-write checkpoint below.)
            wbb_map[waddr] = new_value
            return _PROCEED_WBB
        if self.untracked:
            if self._ignore_false_writes and new_value == cur_value:
                return _PROCEED
            return (CHECKPOINT, "latest_write")
        if self._ignore_text and self._text_lo <= waddr < self._text_hi:
            # Every text write checkpoints (self-modifying code, 3.2.4);
            # the write then commits directly: after the checkpoint it is
            # the first access to the address, hence write-dominated.
            return (CHECKPOINT_THEN_WRITE, "text_write")
        wf_set = self._wf_set
        if waddr in wf_set:
            return _PROCEED
        if waddr in self._rf_set:
            # Idempotency violation: write to a read-dominated address.
            if self._ignore_false_writes and new_value == cur_value:
                return _PROCEED
            if self.wbb.capacity == 0:
                return (CHECKPOINT, "violation")
            # The address is in the RF buffer, so its prefix is already
            # resident in the APB; only WBB capacity can fail here.
            if not self.wbb.put(waddr, new_value):
                if self.recorder is not None:
                    self.recorder.emit(
                        BufferOverflow(buffer="wbb", waddr=waddr, op="write")
                    )
                return (CHECKPOINT, "wbb_full")
            if self._remove_duplicates:
                self._rf_set.discard(waddr)
            return _PROCEED_WBB
        # Fresh address: write-dominated.
        if self._wf_capacity == 0:
            # No Write-first Buffer configured: the write is untracked.
            # Safe but pessimistic — a later read then write of this address
            # will look like a violation.
            return _PROCEED
        if len(wf_set) >= self._wf_capacity:
            if self.recorder is not None:
                self.recorder.emit(
                    BufferOverflow(buffer="wf", waddr=waddr, op="write")
                )
            if self._no_wf_overflow:
                return _PROCEED
            return (CHECKPOINT, "wf_full")
        if self._apb_enabled and not self.apb.admit(waddr):
            if self.recorder is not None:
                self.recorder.emit(
                    BufferOverflow(buffer="apb", waddr=waddr, op="write")
                )
            if self._no_wf_overflow:
                return _PROCEED
            return (CHECKPOINT, "apb_full")
        wf_set.add(waddr)
        return _PROCEED

    def _read_side_full(self, cause: str, waddr: int) -> Decision:
        """A read could not be tracked: either defer via latest-checkpoint
        (stop tracking, checkpoint before the next write) or checkpoint
        now."""
        if self.recorder is not None:
            self.recorder.emit(
                BufferOverflow(
                    buffer="rf" if cause == "rf_full" else "apb",
                    waddr=waddr,
                    op="read",
                )
            )
        if self._latest_checkpoint:
            self.untracked = True
            return _PROCEED
        return (CHECKPOINT, cause)

    # ------------------------------------------------------------------ #
    # Straight-line section enumeration (the fast-path entry point).
    # ------------------------------------------------------------------ #

    def chain_scratch(self, ct) -> "ChainScratch":
        """A reusable membership scratch for :meth:`straightline_chain`.

        One scratch per ``(detector, trace)`` pair; reusing it across calls
        avoids re-zeroing the flat membership arrays (the generation stamp
        makes old entries stale for free).
        """
        nwords = ct.scan_arrays(self._text_lo, self._text_hi)[2]
        nprefixes = (
            ct.prefix_ids(self.apb.prefix_low_bits)[1]
            if self._apb_enabled else 0
        )
        return ChainScratch(nwords, nprefixes)

    def chain_scan_engine(self, ct, forced_sorted, pi_words, pi_indices):
        """A compiled-kernel engine for this detector's chain scans.

        Returns a :class:`repro.core.cext.ChainScanEngine` bound to this
        detector's configuration and the given trace/marking, or ``None``
        when the optional C kernel is unavailable (no compiler,
        ``REPRO_CEXT=0``, or any build/load failure) — callers then use
        :meth:`straightline_chain`, the pure-Python reference.
        """
        lib = cext.chain_scan_lib()
        if lib is None:
            return None
        flags = 0
        if self._apb_enabled:
            flags |= cext.F_APB_ON
        if self._ignore_text:
            flags |= cext.F_IGNORE_TEXT
        if self._ignore_false_writes:
            flags |= cext.F_IGNORE_FALSE_WRITES
        if self._remove_duplicates:
            flags |= cext.F_REMOVE_DUPLICATES
        if self._no_wf_overflow:
            flags |= cext.F_NO_WF_OVERFLOW
        if self._latest_checkpoint:
            flags |= cext.F_LATEST_CHECKPOINT
        params = (
            self._rf_capacity, self._wf_capacity, self.wbb.capacity,
            self.apb.capacity, flags, self._text_lo, self._text_hi,
            self.apb.prefix_low_bits,
        )
        return cext.ChainScanEngine(
            lib, ct, params, forced_sorted, pi_words, pi_indices
        )

    def family_params(self) -> Tuple[int, int, int, int, int]:
        """This detector's member tuple for a family chain scan.

        ``(rf_cap, wf_cap, wbb_cap, apb_cap, flags)`` — the per-member
        slice of the lockstep kernel's inputs, assembled exactly as
        :meth:`chain_scan_engine` assembles its scalar parameters
        (``F_HAS_PI`` is added by the engine, not here).  Members of one
        family must share the trace, PI marking, forced checkpoints,
        text bounds, and APB prefix shift; only these five values may
        differ.
        """
        flags = 0
        if self._apb_enabled:
            flags |= cext.F_APB_ON
        if self._ignore_text:
            flags |= cext.F_IGNORE_TEXT
        if self._ignore_false_writes:
            flags |= cext.F_IGNORE_FALSE_WRITES
        if self._remove_duplicates:
            flags |= cext.F_REMOVE_DUPLICATES
        if self._no_wf_overflow:
            flags |= cext.F_NO_WF_OVERFLOW
        if self._latest_checkpoint:
            flags |= cext.F_LATEST_CHECKPOINT
        return (self._rf_capacity, self._wf_capacity, self.wbb.capacity,
                self.apb.capacity, flags)

    def straightline_chain(
        self,
        ct,
        start: int,
        direct: bool,
        forced_done: int,
        forced_sorted,
        pi_words,
        pi_indices,
        scratch: "Optional[ChainScratch]" = None,
        collect_dw: bool = False,
    ):
        """Yield every section reachable failure-free from ``start``.

        From a committed checkpoint the buffers are empty, so each next
        section boundary is a pure function of the trace, this detector's
        configuration, and the compiler marking — independent of the power
        schedule.  This generator replays exactly the decision sequence of
        :meth:`on_read`/:meth:`on_write` (inlined over the precomputed
        per-trace arrays of :meth:`~repro.trace.trace.CompiledTrace.scan_arrays`
        and generation-stamped flat membership, no per-access method calls
        or hash probes) and follows each boundary into the next
        section until the final checkpoint, yielding
        ``(start, variant, end, cause, wbb_steps)``:

        * ``variant`` — ``0`` normal entry; ``1`` the compiler checkpoint
          at ``start`` already committed (the simulator's ``forced_done``
          latch), so it must not fire again; ``2`` the access at ``start``
          is a committed direct text write the detector never observes.
          :mod:`repro.sim.sections` mirrors these as ``VARIANT_*``.
        * ``end`` — the boundary access (``ct.n`` for the final
          checkpoint); the section executes exactly ``[start, end)``.
        * ``cause`` — the checkpoint cause charged at the boundary.
        * ``wbb_steps`` — ascending trace indices at which the Write-back
          Buffer grew; ``bisect`` against a cut point inside the section
          yields that prefix's flush size, keeping the enumeration
          cost-model independent.
        * ``dw_idx`` — ascending trace indices of the section's
          write-first-path writes: the writes that commit *directly* to
          non-volatile memory with a value a later rollback does not
          restore.  Collected only under ``collect_dw`` (the fast path's
          stale-view safety check,
          :meth:`repro.sim.sections.SectionMap.watchdog_cut_safe`, derives
          them lazily for the rare sections a watchdog checkpoint actually
          cuts); otherwise always ``()``, keeping the hot scan free of
          per-write bookkeeping.

        Enumerating the whole chain in one call amortizes the constant
        per-section cost (buffer reset, locals binding, call overhead)
        that dominates for small-buffer configurations whose sections
        span only a few accesses.  A caller that already knows a suffix
        of the chain stops consuming at the first ``(start, variant)`` it
        has seen — the boundary sequence from any shared entry onward is
        identical.

        Args:
            ct: :class:`repro.trace.trace.CompiledTrace` to scan.
            start: Starting access index of the first section.
            direct: The access at ``start`` is a committed direct text
                write (variant ``2`` entry): scanning starts one access
                later, since re-consulting the detector would checkpoint
                forever.
            forced_done: Index of the most recently committed compiler
                checkpoint (``-1`` if none) — at its own index the
                checkpoint must not fire again.
            forced_sorted: Ascending compiler-checkpoint indices
                ``< ct.n``.
            pi_words: Word addresses marked Program Idempotent (or falsy).
            pi_indices: Trace indices marked Program Idempotent (or
                falsy).
            scratch: A :class:`ChainScratch` from :meth:`chain_scratch`
                (for the same trace) to reuse across calls; ``None``
                allocates a fresh one.
            collect_dw: Record each section's direct-commit write indices
                in the yielded ``dw_idx`` (off by default; see above).

        The write-value comparisons of ignore-false-writes use the
        precomputed ``ct.false_writes`` oracle view; see
        :mod:`repro.sim.sections` for the exact conditions under which
        the run-time view can diverge from the oracle (and the fast path
        falls back to the reference simulator).
        """
        n = ct.n
        waddrs = ct.waddrs
        rf_cap = self._rf_capacity
        wf_cap = self._wf_capacity
        wbb_cap = self.wbb.capacity
        apb_cap = self.apb.capacity
        apb_on = self._apb_enabled
        ignore_text = self._ignore_text
        ig_fw = self._ignore_false_writes
        rm_dup = self._remove_duplicates
        no_wf_ovf = self._no_wf_overflow
        latest = self._latest_checkpoint
        pi_words = pi_words or ()
        pi_indices = pi_indices or ()
        has_pi = bool(pi_words) or bool(pi_indices)

        ops, wids, _ = ct.scan_arrays(self._text_lo, self._text_hi)
        if apb_on:
            pids, _ = ct.prefix_ids(self.apb.prefix_low_bits)
        else:
            pids = ()
        if scratch is None:
            scratch = self.chain_scratch(ct)
        rf_g = scratch.rf
        wf_g = scratch.wf
        wbb_g = scratch.wbb
        apb_g = scratch.apb

        fs = forced_sorted
        nfs = len(fs)
        fidx = 0
        while True:
            # -- section entry: resolve the variant ---------------------- #
            while fidx < nfs and fs[fidx] < start:
                fidx += 1
            at_forced = fidx < nfs and fs[fidx] == start
            if direct:
                variant = 2
                scan_from = start + 1
            elif at_forced and forced_done != start:
                # Zero-length section: the compiler checkpoint fires
                # before the access at ``start`` is even classified.
                yield start, 0, start, "compiler", (), ()
                forced_done = start
                continue
            else:
                variant = 1 if at_forced else 0
                scan_from = start
            # The next *active* compiler checkpoint: a forced index at the
            # start itself either fired (zero-length section above), was
            # just committed (``forced_done`` latch), or lies behind the
            # direct write.
            nf_idx = fidx + 1 if at_forced else fidx
            next_forced = fs[nf_idx] if nf_idx < nfs else n + 1

            # -- straight-line scan to the next boundary ----------------- #
            g = scratch.gen + 1
            scratch.gen = g  # stamp bump == clear all four buffers
            rf_len = 0
            wf_len = 0
            wbb_len = 0
            apb_len = 0
            steps = []
            dw_i = []
            untracked = False
            end = n
            cause = "final"
            i = scan_from
            while i < n:
                if i == next_forced:
                    end = i
                    cause = "compiler"
                    break
                op = ops[i]
                if op & 1:
                    # Write.
                    if op & 4:
                        end = i
                        cause = "output"
                        break
                    if has_pi and (waddrs[i] in pi_words or i in pi_indices):
                        i += 1
                        continue
                    if ignore_text and op & 2:
                        end = i
                        cause = "text_write"
                        break
                    v = wids[i]
                    if wbb_g[v] == g:
                        i += 1  # in-place update; no growth
                        continue
                    if wf_g[v] == g:
                        if collect_dw:
                            dw_i.append(i)
                        i += 1
                        continue
                    if rf_g[v] == g:
                        # Idempotency violation.
                        if ig_fw and op & 8:
                            i += 1
                            continue
                        if wbb_cap == 0:
                            end = i
                            cause = "violation"
                            break
                        if wbb_len >= wbb_cap:
                            end = i
                            cause = "wbb_full"
                            break
                        wbb_g[v] = g
                        wbb_len += 1
                        steps.append(i)
                        if rm_dup:
                            rf_g[v] = 0
                            rf_len -= 1
                        i += 1
                        continue
                    # Fresh address: write-dominated.
                    if wf_cap == 0:
                        if collect_dw:
                            dw_i.append(i)
                        i += 1
                        continue
                    if wf_len >= wf_cap:
                        if no_wf_ovf:
                            if collect_dw:
                                dw_i.append(i)
                            i += 1
                            continue
                        end = i
                        cause = "wf_full"
                        break
                    if apb_on:
                        p = pids[i]
                        if apb_g[p] != g:
                            if apb_len >= apb_cap:
                                if no_wf_ovf:
                                    if collect_dw:
                                        dw_i.append(i)
                                    i += 1
                                    continue
                                end = i
                                cause = "apb_full"
                                break
                            apb_g[p] = g
                            apb_len += 1
                    wf_g[v] = g
                    wf_len += 1
                    if collect_dw:
                        dw_i.append(i)
                    i += 1
                    continue
                # Read.
                if has_pi and (waddrs[i] in pi_words or i in pi_indices):
                    i += 1
                    continue
                if ignore_text and op & 2:
                    i += 1
                    continue
                v = wids[i]
                if rf_g[v] == g or wbb_g[v] == g or wf_g[v] == g:
                    i += 1
                    continue
                if rf_len >= rf_cap:
                    if not latest:
                        end = i
                        cause = "rf_full"
                        break
                    untracked = True
                    i += 1
                    break  # drop into the untracked tail loop
                if apb_on:
                    p = pids[i]
                    if apb_g[p] != g:
                        if apb_len >= apb_cap:
                            if not latest:
                                end = i
                                cause = "apb_full"
                                break
                            untracked = True
                            i += 1
                            break
                        apb_g[p] = g
                        apb_len += 1
                rf_g[v] = g
                rf_len += 1
                i += 1
            if untracked:
                # Untracked tail (latest-checkpoint mode after a read-side
                # fill): reads always pass, so only writes need
                # classifying.
                while i < n:
                    if i == next_forced:
                        end = i
                        cause = "compiler"
                        break
                    op = ops[i]
                    if op & 1:
                        if op & 4:
                            end = i
                            cause = "output"
                            break
                        if has_pi and (waddrs[i] in pi_words or i in pi_indices):
                            pass
                        elif wbb_g[wids[i]] == g:
                            # WBB-owned write: in-place update (the WBB's
                            # comparators match every store), never a
                            # boundary — mirrors on_write.
                            pass
                        elif ig_fw and op & 8:
                            pass
                        else:
                            end = i
                            cause = "latest_write"
                            break
                    i += 1
            yield start, variant, end, cause, tuple(steps), tuple(dw_i)

            # -- follow the boundary into the next section --------------- #
            if cause == "final":
                return
            if cause == "compiler":
                forced_done = end
                direct = False
                start = end
            elif cause == "text_write":
                direct = True
                start = end
            elif cause == "output":
                direct = False
                start = end + 1
            else:
                direct = False
                start = end

    def section_arch_scan(
        self,
        ct,
        start: int,
        variant: int,
        forced_sorted,
        pi_words,
        pi_indices,
        scratch: "Optional[ChainScratch]" = None,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...], int]:
        """Growth-step indices of one section's tracking buffers.

        Replays exactly the decision walk of :meth:`straightline_chain`
        for the single section entered at ``(start, variant)`` (variants
        as in :mod:`repro.sim.sections`: ``0`` normal, ``1`` compiler
        checkpoint at ``start`` already committed, ``2`` direct text
        write at ``start``) and records *where* each buffer grew,
        returning ``(rf_steps, wf_steps, apb_steps, rf_peak)``:

        * ``rf_steps`` / ``wf_steps`` / ``apb_steps`` — ascending trace
          indices at which the Read-First, Write-First, and
          Address-Prefix buffers admitted a new entry.  Together with
          the section's ``wbb_steps`` (already memoized on the
          :class:`~repro.sim.sections.Section` record) they give the
          exact occupancy at any cut point ``p`` by bisection:
          WF/WBB/APB net occupancy is ``bisect_left(steps, p)``; RF net
          occupancy is ``bisect_left(rf_steps, p)`` minus
          ``bisect_left(wbb_steps, p)`` under remove-duplicates (every
          WBB capture evicts its word from the RF).
        * ``rf_peak`` — the RF's exact high-water mark over the section.
          Remove-duplicates can shrink the RF mid-section, so unlike the
          other three (monotone; peak = ``len(steps)``) the RF's
          at-commit count is not its maximum.

        Like the ``wbb_steps`` prefix sums, these are schedule-independent
        — computed once per section and reused by every schedule that
        commits it — which is what lets the introspection layer
        (:mod:`repro.obs.analyze`) ride the fast path without per-access
        work.  This scan runs only when introspection is enabled; it is
        never part of the hot enumeration.
        """
        n = ct.n
        waddrs = ct.waddrs
        rf_cap = self._rf_capacity
        wf_cap = self._wf_capacity
        wbb_cap = self.wbb.capacity
        apb_cap = self.apb.capacity
        apb_on = self._apb_enabled
        ignore_text = self._ignore_text
        ig_fw = self._ignore_false_writes
        rm_dup = self._remove_duplicates
        no_wf_ovf = self._no_wf_overflow
        latest = self._latest_checkpoint
        pi_words = pi_words or ()
        pi_indices = pi_indices or ()
        has_pi = bool(pi_words) or bool(pi_indices)

        ops, wids, _ = ct.scan_arrays(self._text_lo, self._text_hi)
        if apb_on:
            pids, _ = ct.prefix_ids(self.apb.prefix_low_bits)
        else:
            pids = ()
        if scratch is None:
            scratch = self.chain_scratch(ct)
        rf_g = scratch.rf
        wf_g = scratch.wf
        wbb_g = scratch.wbb
        apb_g = scratch.apb

        fs = forced_sorted
        j = bisect_left(fs, start)
        at_forced = j < len(fs) and fs[j] == start
        if variant == 0 and at_forced:
            # Zero-length compiler section: nothing is classified.
            return (), (), (), 0
        nf_idx = j + 1 if at_forced else j
        next_forced = fs[nf_idx] if nf_idx < len(fs) else n + 1
        scan_from = start + 1 if variant == 2 else start

        g = scratch.gen + 1
        scratch.gen = g
        rf_len = 0
        rf_peak = 0
        wf_len = 0
        wbb_len = 0
        apb_len = 0
        rf_i = []
        wf_i = []
        apb_i = []
        i = scan_from
        while i < n:
            if i == next_forced:
                break
            op = ops[i]
            if op & 1:
                if op & 4:
                    break
                if has_pi and (waddrs[i] in pi_words or i in pi_indices):
                    i += 1
                    continue
                if ignore_text and op & 2:
                    break
                v = wids[i]
                if wbb_g[v] == g or wf_g[v] == g:
                    i += 1
                    continue
                if rf_g[v] == g:
                    if ig_fw and op & 8:
                        i += 1
                        continue
                    if wbb_cap == 0 or wbb_len >= wbb_cap:
                        break
                    wbb_g[v] = g
                    wbb_len += 1
                    if rm_dup:
                        rf_g[v] = 0
                        rf_len -= 1
                    i += 1
                    continue
                if wf_cap == 0:
                    i += 1
                    continue
                if wf_len >= wf_cap:
                    if no_wf_ovf:
                        i += 1
                        continue
                    break
                if apb_on:
                    p = pids[i]
                    if apb_g[p] != g:
                        if apb_len >= apb_cap:
                            if no_wf_ovf:
                                i += 1
                                continue
                            break
                        apb_g[p] = g
                        apb_len += 1
                        apb_i.append(i)
                wf_g[v] = g
                wf_len += 1
                wf_i.append(i)
                i += 1
                continue
            # Read.
            if has_pi and (waddrs[i] in pi_words or i in pi_indices):
                i += 1
                continue
            if ignore_text and op & 2:
                i += 1
                continue
            v = wids[i]
            if rf_g[v] == g or wbb_g[v] == g or wf_g[v] == g:
                i += 1
                continue
            if rf_len >= rf_cap:
                # Read-side fill: checkpoint boundary, or (latest mode)
                # the untracked tail — which admits nothing either way.
                break
            if apb_on:
                p = pids[i]
                if apb_g[p] != g:
                    if apb_len >= apb_cap:
                        break
                    apb_g[p] = g
                    apb_len += 1
                    apb_i.append(i)
            rf_g[v] = g
            rf_len += 1
            if rf_len > rf_peak:
                rf_peak = rf_len
            rf_i.append(i)
            i += 1
        return tuple(rf_i), tuple(wf_i), tuple(apb_i), rf_peak

    # ------------------------------------------------------------------ #
    # View and lifecycle.
    # ------------------------------------------------------------------ #

    def wbb_value(self, waddr: int) -> Optional[int]:
        """Buffered (newest) value for ``waddr``, or None if not buffered.

        The program's view of memory is the WBB overlaid on non-volatile
        memory.
        """
        return self.wbb.get(waddr)

    def reset_section(self) -> Dict[int, int]:
        """Checkpoint phase 2: reset all buffers for the next idempotent
        section, returning the Write-back Buffer contents that the
        checkpoint routine must flush to non-volatile memory."""
        flushed = self.wbb.drain()
        self.rf.clear()
        self.wf.clear()
        self.apb.clear()
        self.untracked = False
        return flushed

    def power_fail(self) -> None:
        """Power loss: all buffers are volatile and simply vanish; buffered
        idempotency-violating writes roll back for free (Section 3.1.2)."""
        self.rf.clear()
        self.wf.clear()
        self.wbb.clear()
        self.apb.clear()
        self.untracked = False

    def snapshot(self) -> Tuple:
        """Copy of the complete volatile detector state.

        Used by the bounded model checker to fork execution at every
        possible power-failure point while driving this real implementation
        (not a re-implementation of its logic).
        """
        return (
            frozenset(self.rf),
            frozenset(self.wf),
            tuple(sorted(self.wbb.items())),
            frozenset(self.apb._prefixes),
            self.untracked,
        )

    def restore(self, state: Tuple) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        rf, wf, wbb_items, prefixes, untracked = state
        # Mutate the backing containers in place: the decision paths hold
        # direct references to them (see __init__).
        self.rf._addrs.clear()
        self.rf._addrs.update(rf)
        self.wf._addrs.clear()
        self.wf._addrs.update(wf)
        self.wbb._entries.clear()
        self.wbb._entries.update(wbb_items)
        self.apb._prefixes.clear()
        self.apb._prefixes.update(prefixes)
        self.untracked = untracked

    def occupancy(self) -> Dict[str, int]:
        """Current entry counts, for diagnostics and tests."""
        return {
            "rf": len(self.rf),
            "wf": len(self.wf),
            "wbb": len(self.wbb),
            "apb": len(self.apb),
        }


# --------------------------------------------------------------------- #
# Multi-configuration watermark scan (pure-Python reference).
# --------------------------------------------------------------------- #

#: Cause codes shared with the C kernel (indices into cext.CAUSE_NAMES).
_CAUSE_FINAL = 0
_CAUSE_COMPILER = 1
_CAUSE_OUTPUT = 2
_CAUSE_TEXT_WRITE = 3


def watermark_scan(
    ct,
    text_lo: int,
    text_hi: int,
    shift: int,
    pi_words,
    pi_indices,
    ignore_text: bool,
    ignore_false_writes: bool,
    remove_duplicates: bool,
    wf_zero: bool,
    scratch: "ChainScratch",
    scan_from: int,
    stop_at: int,
    rf_slots: int,
    wf_slots: int,
    wbb_slots: int,
    apb_slots: int,
):
    """One infinite-capacity pass recording per-buffer watermark events.

    Pure-Python reference of the C ``watermark_scan`` kernel (the source
    of truth for its semantics); :mod:`repro.sim.watermarks` uses either
    interchangeably.  Up to the first overflow the real finite-capacity
    scan of :meth:`IdempotencyDetector.straightline_chain` takes exactly
    the capacity-independent decisions replayed here, so one record
    answers every capacity in a sweep family:

    * ``rf[t]`` — first fresh-read attempt finding ``t`` RF entries, i.e.
      the overflow position of an RF with capacity ``t`` (the occupancy
      watermark grows one step at a time, even under remove-duplicates,
      because only fresh-read insertions ever raise it);
    * ``wf[t]`` — the ``(t+1)``-th fresh-write WF insertion;
    * ``wbb[t]`` — the ``(t+1)``-th violation captured by the WBB (its
      strict prefix below a derived boundary is the section's
      ``wbb_steps``);
    * ``apb[t]`` — the ``(t+1)``-th new-prefix admission, with
      ``apb_kind[t] = 1`` for read-side admissions (the
      latest-checkpoint derivation needs the side).

    The scan stops at the first structural boundary (output write, text
    write under ignore-text, trace end), at ``stop_at`` (the caller's
    window or next forced checkpoint), or as soon as the RF, APB, and
    WF event arrays are all full.  The WBB array is deliberately *not*
    part of that stop rule: violations can be arbitrarily rare, so
    waiting for the WBB to fill would drag the scan to the boundary —
    and it is never needed, because an unsaturated WBB array records
    every violation below ``scanned_to`` (so a missing event proves the
    trip lies beyond any winner the caller can accept), while a
    saturated one is guarded by the caller's last-event check.
    ``wf_entries == 0`` configurations never consult WF/APB on writes
    (the ``wf_zero`` flag, a separate family; WF then counts as full);
    no-WF-overflow members are handled by the caller's derive-time
    overflow proof (:mod:`repro.sim.watermarks`).

    Returns ``(rf, wf, wbb, apb, apb_kind, scanned_to, struct_pos,
    struct_cause, complete)`` with ``complete`` one of
    ``cext.WM_EARLY`` (event arrays filled at ``scanned_to``),
    ``cext.WM_STRUCT`` (structural boundary at ``struct_pos``), or
    ``cext.WM_STOP_AT`` (reached ``stop_at``).
    """
    n = ct.n
    waddrs = ct.waddrs
    ops, wids, _ = ct.scan_arrays(text_lo, text_hi)
    pids, _ = ct.prefix_ids(shift)
    pi_words = pi_words or ()
    pi_indices = pi_indices or ()
    has_pi = bool(pi_words) or bool(pi_indices)

    g = scratch.gen + 1
    scratch.gen = g
    rf_g = scratch.rf
    wf_g = scratch.wf
    wbb_g = scratch.wbb
    apb_g = scratch.apb

    rf_ev = []
    wf_ev = []
    wbb_ev = []
    apb_ev = []
    apb_kind = []
    n_rf = n_wf = n_wbb = n_apb = 0
    rf_len = 0  # live RF occupancy (remove-duplicates decrements it)
    bound = stop_at if stop_at < n else n
    struct_pos = -1
    struct_cause = 0
    complete = cext.WM_EARLY
    early = (
        n_rf == rf_slots and n_apb == apb_slots
        and (wf_zero or n_wf == wf_slots)
    )
    i = scan_from
    while not early and i < bound:
        op = ops[i]
        if op & 1:
            # Write.
            if op & 4:
                struct_pos = i
                struct_cause = _CAUSE_OUTPUT
                complete = cext.WM_STRUCT
                break
            if has_pi and (waddrs[i] in pi_words or i in pi_indices):
                i += 1
                continue
            if ignore_text and op & 2:
                struct_pos = i
                struct_cause = _CAUSE_TEXT_WRITE
                complete = cext.WM_STRUCT
                break
            v = wids[i]
            if wbb_g[v] == g or wf_g[v] == g:
                i += 1
                continue
            if rf_g[v] == g:
                # Idempotency violation.
                if ignore_false_writes and op & 8:
                    i += 1
                    continue
                if n_wbb < wbb_slots:
                    wbb_ev.append(i)
                    n_wbb += 1
                wbb_g[v] = g
                if remove_duplicates:
                    rf_g[v] = 0
                    rf_len -= 1
                i += 1
                continue  # WBB events never complete the stop rule
            # Fresh address: write-dominated.
            if wf_zero:
                i += 1  # untracked; WF and APB never consulted
                continue
            p = pids[i]
            if apb_g[p] != g:
                if n_apb < apb_slots:
                    apb_ev.append(i)
                    apb_kind.append(0)
                    n_apb += 1
                apb_g[p] = g
            if n_wf < wf_slots:
                wf_ev.append(i)
                n_wf += 1
            wf_g[v] = g
            i += 1
            early = (
                n_rf == rf_slots and n_apb == apb_slots
                and (wf_zero or n_wf == wf_slots)
            )
            continue
        # Read.
        if has_pi and (waddrs[i] in pi_words or i in pi_indices):
            i += 1
            continue
        if ignore_text and op & 2:
            i += 1
            continue
        v = wids[i]
        if rf_g[v] == g or wbb_g[v] == g or wf_g[v] == g:
            i += 1
            continue
        # Fresh read: RF insertion attempt with pre-length rf_len.
        p = pids[i]
        if apb_g[p] != g:
            if n_apb < apb_slots:
                apb_ev.append(i)
                apb_kind.append(1)
                n_apb += 1
            apb_g[p] = g
        if rf_len == n_rf and n_rf < rf_slots:
            rf_ev.append(i)
            n_rf += 1
        rf_g[v] = g
        rf_len += 1
        i += 1
        early = (
            n_rf == rf_slots and n_apb == apb_slots
            and (wf_zero or n_wf == wf_slots)
        )
    if complete == cext.WM_EARLY and not early:
        # Ran off the scan bound without filling the event arrays.
        if bound == stop_at and stop_at <= n:
            struct_pos = stop_at
            struct_cause = _CAUSE_COMPILER
            complete = cext.WM_STOP_AT
        else:
            struct_pos = n
            struct_cause = _CAUSE_FINAL
            complete = cext.WM_STRUCT
    if complete == cext.WM_EARLY:
        scanned_to = i
    elif complete == cext.WM_STOP_AT:
        scanned_to = stop_at
    else:
        scanned_to = struct_pos
    return (
        array("i", rf_ev), array("i", wf_ev), array("i", wbb_ev),
        array("i", apb_ev), array("B", apb_kind),
        scanned_to, struct_pos, struct_cause, complete,
    )


_CAUSE_VIOLATION = 4
_CAUSE_WBB_FULL = 5
_CAUSE_WF_FULL = 6
_CAUSE_APB_FULL = 7
_CAUSE_RF_FULL = 8
_CAUSE_LATEST_WRITE = 9

_FAM_ENTRY, _FAM_SCAN, _FAM_TAIL, _FAM_DONE = 0, 1, 2, 3


def family_chain_scan_py(ops, wids, pids, pi, fs, n, members, start0=0):
    """Pure-Python family chain scan (the C kernel's reference).

    Walks ``ops``/``wids`` once while advancing every member's section
    state machine in lockstep — decision-equivalent to the
    member-sequential ``family_chain_scan`` in ``_chainscan.c`` (each
    member takes exactly the scalar chain-scan decision sequence, so
    interleaving order cannot matter), with membership sets in place of
    generation-stamp scratch.  ``members`` is a sequence of
    ``(rf_cap, wf_cap, wbb_cap, apb_cap, flags)`` tuples (the engine
    layer adds ``cext.F_HAS_PI`` when ``pi`` is a usable mask, mirroring
    the C driver).  Returns ``[(member, start, variant, end, cause_id,
    steps_tuple), ...]`` in the kernel's discovery order.
    """
    nk = len(members)
    nfs = len(fs)
    f_apb = cext.F_APB_ON
    f_ig_text = cext.F_IGNORE_TEXT
    f_ig_fw = cext.F_IGNORE_FALSE_WRITES
    f_rm_dup = cext.F_REMOVE_DUPLICATES
    f_no_ovf = cext.F_NO_WF_OVERFLOW
    f_latest = cext.F_LATEST_CHECKPOINT
    f_has_pi = cext.F_HAS_PI
    events = []
    mode = [_FAM_ENTRY] * nk
    startv = [start0] * nk
    pos = [start0] * nk
    fd = [-1] * nk
    fidx = [0] * nk
    nf = [n + 1] * nk
    direct = [0] * nk
    variant = [0] * nk
    steps = [[] for _ in range(nk)]
    rf = [set() for _ in range(nk)]
    wf = [set() for _ in range(nk)]
    wbb = [set() for _ in range(nk)]
    apb = [set() for _ in range(nk)]
    ndone = 0

    def boundary(c, e, cz):
        nonlocal ndone
        events.append((c, startv[c], variant[c], e, cz, tuple(steps[c])))
        if cz == _CAUSE_FINAL:
            mode[c] = _FAM_DONE
            ndone += 1
        elif cz == _CAUSE_COMPILER:
            fd[c] = e
            direct[c] = 0
            startv[c] = e
            mode[c] = _FAM_ENTRY
            pos[c] = e
        elif cz == _CAUSE_TEXT_WRITE:
            direct[c] = 1
            startv[c] = e
            mode[c] = _FAM_ENTRY
            pos[c] = e
        elif cz == _CAUSE_OUTPUT:
            direct[c] = 0
            startv[c] = e + 1
            mode[c] = _FAM_ENTRY
            pos[c] = e + 1
        else:
            direct[c] = 0
            startv[c] = e
            mode[c] = _FAM_ENTRY
            pos[c] = e

    i = start0
    while i <= n and ndone < nk:
        if i < n:
            op = ops[i]
            wv = wids[i]
            pv = pids[i] if pids is not None else 0
            pi_i = pi[i] if pi is not None else 0
        else:
            op = wv = pv = pi_i = 0
        for c in range(nk):
            while mode[c] != _FAM_DONE and pos[c] == i:
                rf_cap, wf_cap, wbb_cap, apb_cap, flags = members[c]
                if mode[c] == _FAM_ENTRY:
                    # -- section entry: resolve the variant --
                    s = startv[c]
                    while fidx[c] < nfs and fs[fidx[c]] < s:
                        fidx[c] += 1
                    at_forced = fidx[c] < nfs and fs[fidx[c]] == s
                    if direct[c]:
                        variant[c] = 2
                        scan_from = s + 1
                    elif at_forced and fd[c] != s:
                        # Zero-length compiler section.
                        events.append((c, s, 0, s, _CAUSE_COMPILER, ()))
                        fd[c] = s
                        continue
                    else:
                        variant[c] = 1 if at_forced else 0
                        scan_from = s
                    nf_idx = fidx[c] + 1 if at_forced else fidx[c]
                    nf[c] = fs[nf_idx] if nf_idx < nfs else n + 1
                    rf[c].clear()
                    wf[c].clear()
                    wbb[c].clear()
                    apb[c].clear()
                    steps[c] = []
                    mode[c] = _FAM_SCAN
                    pos[c] = scan_from
                    continue
                if i >= n:
                    # End of trace: the final checkpoint.
                    boundary(c, n, _CAUSE_FINAL)
                    continue
                if i == nf[c]:
                    boundary(c, i, _CAUSE_COMPILER)
                    continue
                if mode[c] == _FAM_TAIL:
                    # Untracked tail: reads always pass, writes only.
                    if op & 1:
                        if op & 4:
                            boundary(c, i, _CAUSE_OUTPUT)
                            continue
                        if (flags & f_has_pi) and pi_i:
                            pass  # PI write: passes
                        elif wv in wbb[c]:
                            pass  # WBB-owned write: in-place update
                        elif (flags & f_ig_fw) and (op & 8):
                            pass  # false write: passes
                        else:
                            boundary(c, i, _CAUSE_LATEST_WRITE)
                            continue
                    pos[c] = i + 1
                    continue
                # _FAM_SCAN: the tracked straight-line classification.
                if op & 1:
                    # Write.
                    if op & 4:
                        boundary(c, i, _CAUSE_OUTPUT)
                        continue
                    if (flags & f_has_pi) and pi_i:
                        pos[c] = i + 1
                        continue
                    if (flags & f_ig_text) and (op & 2):
                        boundary(c, i, _CAUSE_TEXT_WRITE)
                        continue
                    if wv in wbb[c] or wv in wf[c]:
                        pos[c] = i + 1
                        continue
                    if wv in rf[c]:
                        # Idempotency violation.
                        if (flags & f_ig_fw) and (op & 8):
                            pos[c] = i + 1
                            continue
                        if wbb_cap == 0:
                            boundary(c, i, _CAUSE_VIOLATION)
                            continue
                        if len(wbb[c]) >= wbb_cap:
                            boundary(c, i, _CAUSE_WBB_FULL)
                            continue
                        wbb[c].add(wv)
                        steps[c].append(i)
                        if flags & f_rm_dup:
                            rf[c].discard(wv)
                        pos[c] = i + 1
                        continue
                    # Fresh address: write-dominated.
                    if wf_cap == 0:
                        pos[c] = i + 1
                        continue
                    if len(wf[c]) >= wf_cap:
                        if flags & f_no_ovf:
                            pos[c] = i + 1
                            continue
                        boundary(c, i, _CAUSE_WF_FULL)
                        continue
                    if (flags & f_apb) and pv not in apb[c]:
                        if len(apb[c]) >= apb_cap:
                            if flags & f_no_ovf:
                                pos[c] = i + 1
                                continue
                            boundary(c, i, _CAUSE_APB_FULL)
                            continue
                        apb[c].add(pv)
                    wf[c].add(wv)
                    pos[c] = i + 1
                    continue
                # Read.
                if (flags & f_has_pi) and pi_i:
                    pos[c] = i + 1
                    continue
                if (flags & f_ig_text) and (op & 2):
                    pos[c] = i + 1
                    continue
                if wv in rf[c] or wv in wbb[c] or wv in wf[c]:
                    pos[c] = i + 1
                    continue
                if len(rf[c]) >= rf_cap:
                    if not (flags & f_latest):
                        boundary(c, i, _CAUSE_RF_FULL)
                        continue
                    mode[c] = _FAM_TAIL
                    pos[c] = i + 1
                    continue
                if (flags & f_apb) and pv not in apb[c]:
                    if len(apb[c]) >= apb_cap:
                        if not (flags & f_latest):
                            boundary(c, i, _CAUSE_APB_FULL)
                            continue
                        mode[c] = _FAM_TAIL
                        pos[c] = i + 1
                        continue
                    apb[c].add(pv)
                rf[c].add(wv)
                pos[c] = i + 1
        i += 1
    return events
