"""Idempotency detection and buffer-management logic (Sections 3.1-3.2).

The detector observes every (non-ignored) memory access and decides whether
it may proceed, must be absorbed by the Write-back Buffer, or requires a
checkpoint first.  A write to a read-dominated address is an idempotency
violation; a full tracking buffer is treated the same way (Section 3.1.1).

Decisions returned to the caller (the intermittent simulator or the live
ISS attachment):

* ``PROCEED`` — the access goes through; writes commit directly to
  non-volatile memory (the address is write-dominated, untracked-but-safe,
  or a value-preserving "false write").
* ``PROCEED_WBB`` — the write was captured by the volatile Write-back
  Buffer; non-volatile memory keeps the original value.
* ``CHECKPOINT`` — a checkpoint must be taken *before* this access; after
  the buffers reset, re-issue the access (it will then proceed).
* ``CHECKPOINT_THEN_WRITE`` — text-segment write under ignore-TEXT: take a
  checkpoint, then commit the write directly without re-consulting the
  detector (re-issuing would checkpoint forever).
"""

from typing import Dict, Optional, Tuple

from repro.core.buffers import (
    AddressPrefixBuffer,
    ReadFirstBuffer,
    WriteBackBuffer,
    WriteFirstBuffer,
)
from repro.core.config import ClankConfig
from repro.obs.events import BufferOverflow

PROCEED = 0
PROCEED_WBB = 1
CHECKPOINT = 2
CHECKPOINT_THEN_WRITE = 3

#: A detector decision: (action, checkpoint cause or None).
Decision = Tuple[int, Optional[str]]

_PROCEED: Decision = (PROCEED, None)
_PROCEED_WBB: Decision = (PROCEED_WBB, None)


class IdempotencyDetector:
    """Clank's detector + management logic over the four buffers.

    Args:
        config: Buffer composition and policy-optimization setting.
        text_word_range: Half-open word-address range of the text segment;
            required only when ``ignore_text`` is enabled.
        recorder: Optional :class:`repro.obs.recorder.Recorder` receiving a
            :class:`~repro.obs.events.BufferOverflow` event whenever a
            buffer hits a full condition (even tolerated ones under
            no-WF-overflow).  ``None`` keeps the decision paths free of any
            recording work beyond one attribute check on the (rare)
            full-condition branches.
    """

    def __init__(
        self,
        config: ClankConfig,
        text_word_range: Optional[Tuple[int, int]] = None,
        recorder=None,
    ):
        self.config = config
        self.opts = config.optimizations
        self.rf = ReadFirstBuffer(config.rf_entries)
        self.wf = WriteFirstBuffer(config.wf_entries)
        self.wbb = WriteBackBuffer(config.wbb_entries)
        self.apb = AddressPrefixBuffer(config.apb_entries, config.prefix_low_bits)
        if self.opts.ignore_text and text_word_range is None:
            text_word_range = (0, 0)
        self._text_lo, self._text_hi = text_word_range or (0, 0)
        # The policy flags are consulted on every access of every replay;
        # flatten them out of the nested dataclass so the decision paths do
        # a single attribute fetch.
        self._ignore_text = self.opts.ignore_text
        self._ignore_false_writes = self.opts.ignore_false_writes
        self._remove_duplicates = self.opts.remove_duplicates
        self._no_wf_overflow = self.opts.no_wf_overflow
        self._latest_checkpoint = self.opts.latest_checkpoint
        # Direct references to the buffers' backing containers: membership
        # tests run once or twice per replayed access, and a set/dict probe
        # is several times cheaper than a __contains__ method call.  All
        # buffer operations (insert/discard/clear/drain/restore) mutate
        # these containers in place, so the references never go stale.
        self._rf_set = self.rf._addrs
        self._wf_set = self.wf._addrs
        self._wbb_map = self.wbb._entries
        self._rf_capacity = self.rf.capacity
        self._wf_capacity = self.wf.capacity
        self._apb_enabled = self.apb.capacity > 0
        self.recorder = recorder
        #: Latest-checkpoint mode: tracking stopped after a read-side fill;
        #: reads pass untracked, the next write checkpoints (Section 3.2.5).
        self.untracked = False

    # ------------------------------------------------------------------ #
    # Access handling.
    # ------------------------------------------------------------------ #

    def on_read(self, waddr: int) -> Decision:
        """Decide a read of word ``waddr``."""
        if self.untracked:
            return _PROCEED
        if self._ignore_text and self._text_lo <= waddr < self._text_hi:
            return _PROCEED
        rf_set = self._rf_set
        if waddr in rf_set or waddr in self._wbb_map or waddr in self._wf_set:
            return _PROCEED
        # A fresh read-dominated address must enter the Read-first Buffer.
        if len(rf_set) >= self._rf_capacity:
            return self._read_side_full("rf_full", waddr)
        if self._apb_enabled and not self.apb.admit(waddr):
            return self._read_side_full("apb_full", waddr)
        rf_set.add(waddr)
        return _PROCEED

    def on_write(self, waddr: int, new_value: int, cur_value: int) -> Decision:
        """Decide a write of word value ``new_value`` to ``waddr``.

        Args:
            waddr: Target word address.
            new_value: Word value the write produces.
            cur_value: Word value the program currently observes there (the
                Write-back Buffer overlay over non-volatile memory) — used by
                the ignore-false-writes optimization.
        """
        if self.untracked:
            if self._ignore_false_writes and new_value == cur_value:
                return _PROCEED
            return (CHECKPOINT, "latest_write")
        if self._ignore_text and self._text_lo <= waddr < self._text_hi:
            # Every text write checkpoints (self-modifying code, 3.2.4);
            # the write then commits directly: after the checkpoint it is
            # the first access to the address, hence write-dominated.
            return (CHECKPOINT_THEN_WRITE, "text_write")
        wbb_map = self._wbb_map
        if waddr in wbb_map:
            # Address owned by the Write-back Buffer; update in place.
            wbb_map[waddr] = new_value
            return _PROCEED_WBB
        wf_set = self._wf_set
        if waddr in wf_set:
            return _PROCEED
        if waddr in self._rf_set:
            # Idempotency violation: write to a read-dominated address.
            if self._ignore_false_writes and new_value == cur_value:
                return _PROCEED
            if self.wbb.capacity == 0:
                return (CHECKPOINT, "violation")
            # The address is in the RF buffer, so its prefix is already
            # resident in the APB; only WBB capacity can fail here.
            if not self.wbb.put(waddr, new_value):
                if self.recorder is not None:
                    self.recorder.emit(
                        BufferOverflow(buffer="wbb", waddr=waddr, op="write")
                    )
                return (CHECKPOINT, "wbb_full")
            if self._remove_duplicates:
                self._rf_set.discard(waddr)
            return _PROCEED_WBB
        # Fresh address: write-dominated.
        if self._wf_capacity == 0:
            # No Write-first Buffer configured: the write is untracked.
            # Safe but pessimistic — a later read then write of this address
            # will look like a violation.
            return _PROCEED
        if len(wf_set) >= self._wf_capacity:
            if self.recorder is not None:
                self.recorder.emit(
                    BufferOverflow(buffer="wf", waddr=waddr, op="write")
                )
            if self._no_wf_overflow:
                return _PROCEED
            return (CHECKPOINT, "wf_full")
        if self._apb_enabled and not self.apb.admit(waddr):
            if self.recorder is not None:
                self.recorder.emit(
                    BufferOverflow(buffer="apb", waddr=waddr, op="write")
                )
            if self._no_wf_overflow:
                return _PROCEED
            return (CHECKPOINT, "apb_full")
        wf_set.add(waddr)
        return _PROCEED

    def _read_side_full(self, cause: str, waddr: int) -> Decision:
        """A read could not be tracked: either defer via latest-checkpoint
        (stop tracking, checkpoint before the next write) or checkpoint
        now."""
        if self.recorder is not None:
            self.recorder.emit(
                BufferOverflow(
                    buffer="rf" if cause == "rf_full" else "apb",
                    waddr=waddr,
                    op="read",
                )
            )
        if self._latest_checkpoint:
            self.untracked = True
            return _PROCEED
        return (CHECKPOINT, cause)

    # ------------------------------------------------------------------ #
    # View and lifecycle.
    # ------------------------------------------------------------------ #

    def wbb_value(self, waddr: int) -> Optional[int]:
        """Buffered (newest) value for ``waddr``, or None if not buffered.

        The program's view of memory is the WBB overlaid on non-volatile
        memory.
        """
        return self.wbb.get(waddr)

    def reset_section(self) -> Dict[int, int]:
        """Checkpoint phase 2: reset all buffers for the next idempotent
        section, returning the Write-back Buffer contents that the
        checkpoint routine must flush to non-volatile memory."""
        flushed = self.wbb.drain()
        self.rf.clear()
        self.wf.clear()
        self.apb.clear()
        self.untracked = False
        return flushed

    def power_fail(self) -> None:
        """Power loss: all buffers are volatile and simply vanish; buffered
        idempotency-violating writes roll back for free (Section 3.1.2)."""
        self.rf.clear()
        self.wf.clear()
        self.wbb.clear()
        self.apb.clear()
        self.untracked = False

    def snapshot(self) -> Tuple:
        """Copy of the complete volatile detector state.

        Used by the bounded model checker to fork execution at every
        possible power-failure point while driving this real implementation
        (not a re-implementation of its logic).
        """
        return (
            frozenset(self.rf),
            frozenset(self.wf),
            tuple(sorted(self.wbb.items())),
            frozenset(self.apb._prefixes),
            self.untracked,
        )

    def restore(self, state: Tuple) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        rf, wf, wbb_items, prefixes, untracked = state
        # Mutate the backing containers in place: the decision paths hold
        # direct references to them (see __init__).
        self.rf._addrs.clear()
        self.rf._addrs.update(rf)
        self.wf._addrs.clear()
        self.wf._addrs.update(wf)
        self.wbb._entries.clear()
        self.wbb._entries.update(wbb_items)
        self.apb._prefixes.clear()
        self.apb._prefixes.update(prefixes)
        self.untracked = untracked

    def occupancy(self) -> Dict[str, int]:
        """Current entry counts, for diagnostics and tests."""
        return {
            "rf": len(self.rf),
            "wf": len(self.wf),
            "wbb": len(self.wbb),
            "apb": len(self.apb),
        }
