"""Optional C acceleration for the section-chain scan.

The section-memoized fast path (:mod:`repro.sim.sections`) spends almost
all of its remaining time in one O(n) pass per ``(trace, config)`` key:
:meth:`~repro.core.detector.IdempotencyDetector.straightline_chain`.  The
loop is branch-light integer code over flat arrays — exactly the shape a
C compiler turns into a ~20x faster kernel — so this module compiles the
line-for-line C port in ``_chainscan.c`` on demand with whatever system C
compiler is present and drives it through :mod:`ctypes`.

This is strictly optional infrastructure:

* no compiler, a failed compile, a failed load, or ``REPRO_CEXT=0`` all
  degrade silently to the pure-Python generator (the reference
  implementation, which stays the source of truth for semantics);
* the shared library is cached in the system temp directory keyed by a
  hash of the C source, so each source revision compiles once per
  machine, not once per process;
* no third-party packages and no ``Python.h`` are involved — the kernel
  is plain int32 buffers, built from the standard library only.

``cext_status()`` reports which path a process ended up on (tests and the
CI equivalence job pin both paths explicitly).
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from array import array
from typing import Optional

#: Mirrors the CAUSE_* codes in _chainscan.c.
CAUSE_NAMES = (
    "final", "compiler", "output", "text_write", "violation",
    "wbb_full", "wf_full", "apb_full", "rf_full", "latest_write",
)

#: Mirrors the F_* flag bits in _chainscan.c.
F_APB_ON = 1
F_IGNORE_TEXT = 2
F_IGNORE_FALSE_WRITES = 4
F_REMOVE_DUPLICATES = 8
F_NO_WF_OVERFLOW = 16
F_LATEST_CHECKPOINT = 32
F_HAS_PI = 64
F_FIRST_DW = 128
F_WF_ZERO = 256

#: Mirrors the WM_* completion codes in _chainscan.c (watermark_scan).
WM_EARLY = 0
WM_STRUCT = 1
WM_STOP_AT = 2

_SOURCE = os.path.join(os.path.dirname(__file__), "_chainscan.c")

_lib = None
_tried = False
_status = "untried"


def _compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build() -> Optional[ctypes.CDLL]:
    """Compile (if needed) and load the kernel; None on any failure."""
    global _status
    if os.environ.get("REPRO_CEXT", "1") == "0":
        _status = "disabled (REPRO_CEXT=0)"
        return None
    try:
        with open(_SOURCE, "rb") as f:
            source = f.read()
    except OSError as exc:
        _status = f"source unreadable: {exc}"
        return None
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache_dir = os.environ.get("REPRO_CEXT_CACHE") or tempfile.gettempdir()
    so_path = os.path.join(cache_dir, f"repro_chainscan_{digest}.so")
    if not os.path.exists(so_path):
        cc = _compiler()
        if cc is None:
            _status = "no C compiler on PATH"
            return None
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        try:
            subprocess.run(
                [cc, "-O2", "-fPIC", "-shared", "-o", tmp, _SOURCE],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so_path)  # atomic: racing processes all win
        except Exception as exc:
            _status = f"compile failed: {exc}"
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
    try:
        lib = ctypes.CDLL(so_path)
        fn = lib.chain_scan
    except (OSError, AttributeError) as exc:
        _status = f"load failed: {exc}"
        return None
    c_i32 = ctypes.c_int32
    p = ctypes.c_void_p
    fn.restype = ctypes.c_int64
    fn.argtypes = (
        p, p, p, p, p,                      # ops, wids, pids, pi, fs
        c_i32, c_i32,                       # nfs, n
        c_i32, c_i32, c_i32,                # start, direct, forced_done
        c_i32, c_i32, c_i32, c_i32, c_i32,  # caps, flags
        p, p, p, p, p,                      # scratch + gen
        p, p, p, p, p, p,                   # outputs
        p,                                  # dw_out (F_FIRST_DW)
    )
    try:
        wm = lib.watermark_scan
    except AttributeError as exc:  # pragma: no cover - stale .so only
        _status = f"load failed: {exc}"
        return None
    wm.restype = ctypes.c_int64
    wm.argtypes = (
        p, p, p, p,                         # ops, wids, pids, pi
        c_i32, c_i32, c_i32,                # n, scan_from, stop_at
        c_i32, c_i32, c_i32, c_i32,         # slots
        c_i32,                              # flags
        p, p, p, p, p,                      # scratch + gen
        p, p, p, p, p,                      # event outputs
        p,                                  # meta_out
    )
    try:
        fam = lib.family_chain_scan
    except AttributeError as exc:  # pragma: no cover - stale .so only
        _status = f"load failed: {exc}"
        return None
    c_i64 = ctypes.c_int64
    fam.restype = c_i64
    fam.argtypes = (
        p, p, p, p, p,                      # ops, wids, pids, pi, fs
        c_i32, c_i32, c_i32, c_i32,         # nfs, n, n_words, n_prefixes
        c_i32, c_i32,                       # start0, nk
        p, p,                               # caps, cflags
        p, p, p, p, p,                      # membership scratch + gen
        p, p, p, p,                         # ev_key/end/cause/nsteps
        p,                                  # steps_out
        c_i64, c_i64,                       # ev_percap, st_percap
        p, p,                               # out_nev, out_nst
    )
    try:
        bw = lib.batch_walk
    except AttributeError as exc:  # pragma: no cover - stale .so only
        _status = f"load failed: {exc}"
        return None
    bw.restype = c_i64
    bw.argtypes = (
        p, p, c_i32, p,                     # gcum, acc, n, forced_mask
        p, p, p, p, p, p, p,                # section tables
        p, c_i64,                           # ontimes, n_ontimes
        c_i64, c_i64, c_i64, c_i64,         # base_ck, flush, entry, rcost
        c_i64, c_i64, c_i32, c_i32,         # watchdog loads, flags
        c_i64,                              # max_pc
        c_i32, c_i32, c_i32, c_i32,         # cause ids, cut_ok
        p, p, p, p, c_i32, p,               # st, fl, counts, reaches, out
    )
    _status = f"loaded ({so_path})"
    return lib


def chain_scan_lib() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, or None (memoized, never raises)."""
    global _lib, _tried
    if not _tried:
        _tried = True
        _lib = _build()
    return _lib


def cext_status() -> str:
    """Human-readable disposition of the C kernel for this process."""
    return _status


def reset_for_tests() -> None:
    """Forget the load attempt so tests can re-gate via REPRO_CEXT."""
    global _lib, _tried, _status
    _lib = None
    _tried = False
    _status = "untried"


def _addr(buf) -> int:
    """Base address of an ``array.array`` (0 rejects empty buffers)."""
    return buf.buffer_info()[0]


class ChainScanEngine:
    """Prebound ctypes arguments for one SectionMap's chain scans.

    Holds references to every buffer the kernel reads or writes (the
    per-trace memoized scan/prefix/PI arrays, the shared generation
    scratch, and the per-trace output staging buffers), so each
    :meth:`scan` call is a single foreign-function invocation.  The
    output buffers are staging only — the caller copies what it keeps —
    and are shared per trace, which is safe single-threaded (the
    process-parallel engine gives each worker its own process).
    """

    __slots__ = ("_fn", "_args", "out_start", "out_variant", "out_end",
                 "out_cause", "out_steps_off", "out_steps", "out_dw")

    def __init__(self, lib, ct, params, forced_sorted, pi_words, pi_indices):
        (rf_cap, wf_cap, wbb_cap, apb_cap, flags,
         text_lo, text_hi, shift) = params
        ops_b, wids_b, n_words = ct.scan_buffers(text_lo, text_hi)
        if flags & F_APB_ON:
            pids_b, n_prefixes = ct.prefix_buffers(shift)
            pids_addr = _addr(pids_b)
        else:
            pids_b, n_prefixes = None, 1
            pids_addr = 0
        if pi_words or pi_indices:
            flags |= F_HAS_PI
            pi_b = ct.pi_mask_buffer(pi_words, pi_indices)
            pi_addr = _addr(pi_b)
        else:
            pi_b = None
            pi_addr = 0
        scratch = ct.c_chain_scratch(
            n_words if n_words else 1, shift if flags & F_APB_ON else -1,
            n_prefixes,
        )
        gen_b, rf_b, wf_b, wbb_b, apb_b = scratch
        out = ct.c_chain_outputs()
        (self.out_start, self.out_variant, self.out_end,
         self.out_cause, self.out_steps_off, self.out_steps,
         self.out_dw) = out
        fs_b = array("i", forced_sorted) if forced_sorted else array("i", [0])
        self._fn = lib.chain_scan
        self._args = (
            _addr(ops_b) if ct.n else 0,
            _addr(wids_b) if ct.n else 0,
            pids_addr,
            pi_addr,
            _addr(fs_b),
            len(forced_sorted),
            ct.n,
            rf_cap, wf_cap, wbb_cap, apb_cap, flags,
            _addr(rf_b), _addr(wf_b), _addr(wbb_b), _addr(apb_b),
            _addr(gen_b),
            _addr(self.out_start), _addr(self.out_variant),
            _addr(self.out_end), _addr(self.out_cause),
            _addr(self.out_steps_off), _addr(self.out_steps),
            _addr(self.out_dw),
            # Buffer lifetimes: the arrays must outlive this engine.
            (ops_b, wids_b, pids_b, pi_b, fs_b, gen_b,
             rf_b, wf_b, wbb_b, apb_b),
        )

    def scan(self, start: int, direct: int, forced_done: int) -> int:
        """Run the kernel from one section entry; returns section count."""
        a = self._args
        return self._fn(
            a[0], a[1], a[2], a[3], a[4], a[5], a[6],
            start, direct, forced_done,
            a[7], a[8], a[9], a[10], a[11],
            a[12], a[13], a[14], a[15], a[16],
            a[17], a[18], a[19], a[20], a[21], a[22], a[23],
        )

    def scan_first_dw(self, start: int, direct: int, forced_done: int):
        """Scan just the first section, returning its direct-commit
        write indices (the ``collect_dw`` mode of the Python generator)."""
        a = self._args
        self._fn(
            a[0], a[1], a[2], a[3], a[4], a[5], a[6],
            start, direct, forced_done,
            a[7], a[8], a[9], a[10], a[11] | F_FIRST_DW,
            a[12], a[13], a[14], a[15], a[16],
            a[17], a[18], a[19], a[20], a[21], a[22], a[23],
        )
        dw = self.out_dw
        k = dw[0]
        return tuple(dw[1:k + 1]) if k else ()


class WatermarkEngine:
    """Prebound ctypes arguments for one family's watermark scans.

    One engine per :class:`repro.sim.watermarks.WatermarkFamily`: the
    per-trace input buffers and the generation scratch are prebound,
    and the event output buffers are engine-owned and grow-only — a
    :meth:`scan` call allocates nothing but the compact event copies
    its record keeps.  Scans are frequent (one per distinct section
    start in a family), so the per-call overhead matters.
    """

    __slots__ = ("_fn", "_pre", "_flags", "_keep", "_out", "_out_slots")

    def __init__(self, lib, ct, text_lo, text_hi, shift,
                 pi_words, pi_indices, flags):
        ops_b, wids_b, n_words = ct.scan_buffers(text_lo, text_hi)
        pids_b, n_prefixes = ct.prefix_buffers(shift)
        flags |= F_APB_ON
        if pi_words or pi_indices:
            flags |= F_HAS_PI
            pi_b = ct.pi_mask_buffer(pi_words, pi_indices)
            pi_addr = _addr(pi_b)
        else:
            pi_b = None
            pi_addr = 0
        gen_b, rf_b, wf_b, wbb_b, apb_b = ct.c_chain_scratch(
            n_words if n_words else 1, shift, n_prefixes
        )
        self._fn = lib.watermark_scan
        self._flags = flags
        self._pre = (
            _addr(ops_b) if ct.n else 0,
            _addr(wids_b) if ct.n else 0,
            _addr(pids_b) if ct.n else 0,
            pi_addr,
            ct.n,
            _addr(rf_b), _addr(wf_b), _addr(wbb_b), _addr(apb_b),
            _addr(gen_b),
        )
        # Buffer lifetimes: the arrays must outlive this engine.
        self._keep = (ops_b, wids_b, pids_b, pi_b,
                      gen_b, rf_b, wf_b, wbb_b, apb_b)
        self._out = None
        self._out_slots = 0

    def scan(self, scan_from, stop_at, rf_slots, wf_slots,
             wbb_slots, apb_slots):
        """One watermark pass; returns the raw record tuple
        ``(rf, wf, wbb, apb, apb_kind, scanned_to, struct_pos,
        struct_cause, complete)`` with the event arrays sliced to
        their actual counts."""
        top = max(rf_slots, wf_slots, wbb_slots, apb_slots, 1)
        if top > self._out_slots:
            self._out_slots = top
            self._out = (
                array("i", bytes(4 * top)), array("i", bytes(4 * top)),
                array("i", bytes(4 * top)), array("i", bytes(4 * top)),
                array("B", bytes(top)), array("i", bytes(4 * 8)),
            )
        rf_o, wf_o, wbb_o, apb_o, apb_k, meta = self._out
        a = self._pre
        self._fn(
            a[0], a[1], a[2], a[3], a[4],
            scan_from, stop_at,
            rf_slots, wf_slots, wbb_slots, apb_slots,
            self._flags,
            a[5], a[6], a[7], a[8], a[9],
            _addr(rf_o), _addr(wf_o), _addr(wbb_o),
            _addr(apb_o), _addr(apb_k), _addr(meta),
        )
        return (
            rf_o[:meta[0]], wf_o[:meta[1]], wbb_o[:meta[2]],
            apb_o[:meta[3]], apb_k[:meta[3]],
            meta[4], meta[5], meta[6], meta[7],
        )


#: Member limit per batched family kernel call (chunking bound; the
#: sequential kernel itself has no hard cap).
FAMILY_MAX = 64


#: Initial per-member event/step segment size for family scans; grows by
#: doubling on kernel overflow (module-level so the learned size carries
#: across the transient per-chunk engines of one process).
_FAM_PERCAP = [1024]

#: Reused family-scan output arrays keyed by role; the kernel reports how
#: much of each it wrote, so they are handed out unzeroed and only grown.
_FAM_OUT: dict = {}


def _fam_out(key: str, nmin: int):
    """A reusable output array of at least ``nmin`` items.

    ``key`` names the role; its first character is the ``array``
    typecode (``"i2"``/``"i3"`` are distinct int32 buffers).
    """
    buf = _FAM_OUT.get(key)
    if buf is None or len(buf) < nmin:
        buf = array(key[0], bytes(nmin * array(key[0]).itemsize))
        _FAM_OUT[key] = buf
    return buf


class FamilyScanEngine:
    """Prebound ctypes arguments for one config family's batched scan.

    A family shares ``(trace, PI marking, forced checkpoints, text
    bounds, APB prefix shift)`` and differs only per member in the four
    buffer capacities and the policy flag bits.  One :meth:`scan` call
    runs every member's chain scan inside a single kernel invocation
    and fills member-major output segments — each bit-identical to a
    :class:`ChainScanEngine` scan of that member, by construction.

    Membership scratch is the per-trace memoized family block array
    (:meth:`~repro.trace.trace.ConcreteTrace.c_family_scratch`): the
    persistent generation counter makes stale stamps invisible, so no
    per-call zeroing happens.  Output segments grow by doubling when the
    kernel reports overflow; the learned size sticks process-wide, and
    the segment arrays themselves are reused across engines (the kernel
    writes the prefix it reports, so stale suffixes are never read).
    """

    __slots__ = ("_fn", "_pre", "_nk", "_keep")

    def __init__(self, lib, ct, text_lo, text_hi, shift, forced_sorted,
                 pi_words, pi_indices, members):
        nk = len(members)
        if not 0 < nk <= FAMILY_MAX:
            raise ValueError(f"family size {nk} outside 1..{FAMILY_MAX}")
        ops_b, wids_b, n_words = ct.scan_buffers(text_lo, text_hi)
        if any(m[4] & F_APB_ON for m in members):
            pids_b, n_prefixes = ct.prefix_buffers(shift)
            pids_addr = _addr(pids_b)
            scratch_shift = shift
        else:
            pids_b, n_prefixes = None, 1
            pids_addr = 0
            scratch_shift = -1
        has_pi = bool(pi_words or pi_indices)
        if has_pi:
            pi_b = ct.pi_mask_buffer(pi_words, pi_indices)
            pi_addr = _addr(pi_b)
        else:
            pi_b = None
            pi_addr = 0
        caps_b = array("i", bytes(4 * 4 * nk))
        flags_b = array("i", bytes(4 * nk))
        for c, (rf, wf, wbb, apb, fl) in enumerate(members):
            caps_b[4 * c] = rf
            caps_b[4 * c + 1] = wf
            caps_b[4 * c + 2] = wbb
            caps_b[4 * c + 3] = apb
            flags_b[c] = (fl | F_HAS_PI) if has_pi else fl
        gen_b, rf_b, wf_b, wbb_b, apb_b = ct.c_family_scratch(
            max(n_words, 1), scratch_shift, n_prefixes, nk
        )
        fs_b = array("i", forced_sorted) if forced_sorted else array("i", [0])
        self._fn = lib.family_chain_scan
        self._nk = nk
        self._pre = (
            _addr(ops_b) if ct.n else 0,
            _addr(wids_b) if ct.n else 0,
            pids_addr,
            pi_addr,
            _addr(fs_b),
            len(forced_sorted),
            ct.n,
            max(n_words, 1),
            n_prefixes,
            _addr(caps_b),
            _addr(flags_b),
            _addr(rf_b), _addr(wf_b), _addr(wbb_b), _addr(apb_b),
            _addr(gen_b),
        )
        # Buffer lifetimes: the arrays must outlive this engine.
        self._keep = (ops_b, wids_b, pids_b, pi_b, fs_b, caps_b,
                      flags_b, gen_b, rf_b, wf_b, wbb_b, apb_b)

    def scan(self, start0: int = 0):
        """One batched pass from ``start0`` covering every member.

        Returns ``(nev, nst, ev_key, ev_end, ev_cause, ev_nsteps,
        steps_out, ev_percap, st_percap)``: member ``c``'s ``nev[c]``
        section records occupy ``[c * ev_percap, c * ev_percap +
        nev[c])`` of the event arrays, and its ``nst[c]`` flattened WBB
        steps occupy ``[c * st_percap, c * st_percap + nst[c])`` of
        ``steps_out``.  The event/step arrays are shared process-wide
        scratch — consume (slice) them before the next ``scan`` call.
        """
        a = self._pre
        nk = self._nk
        while True:
            percap = _FAM_PERCAP[0]
            ev_key = _fam_out("q", percap * nk)
            ev_end = _fam_out("i", percap * nk)
            ev_cause = _fam_out("B", percap * nk)
            ev_nsteps = _fam_out("i2", percap * nk)
            steps_out = _fam_out("i3", percap * nk)
            out_nev = array("i", bytes(4 * nk))
            out_nst = array("i", bytes(4 * nk))
            rc = self._fn(
                a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7], a[8],
                start0, nk,
                a[9], a[10],
                a[11], a[12], a[13], a[14], a[15],
                _addr(ev_key), _addr(ev_end), _addr(ev_cause),
                _addr(ev_nsteps),
                _addr(steps_out),
                percap, percap,
                _addr(out_nev), _addr(out_nst),
            )
            if rc == 0:
                return (out_nev, out_nst, ev_key, ev_end, ev_cause,
                        ev_nsteps, steps_out, percap, percap)
            if rc == -2:  # pragma: no cover - guarded in __init__
                raise ValueError("empty family rejected by kernel")
            # Overflow: double the per-member segments and rescan (the
            # kernel's generation write-back keeps the scratch valid).
            _FAM_PERCAP[0] = percap * 2
