"""Client side of the sweep server: route ``run_jobs`` over HTTP.

:class:`ServeClient` implements the same contract as
:func:`repro.eval.parallel.run_jobs` — jobs in, results in submission
order out, profiler and ledger fed — but resolves every job against a
:class:`~repro.serve.server.SweepServer` instead of a local pool.
:func:`install` plants it as ``parallel.SERVED_EXECUTOR``, so every
driver (``fig5``, ``fig8``, sweeps…) transparently becomes a thin
client; :func:`uninstall` restores local execution.

Determinism contract: the server returns the same ``to_dict`` payloads
the fork pool ships between processes, and the client merges them in
submission order — so served results are byte-identical to a local run
of the same batch, whatever mix of cache tiers served them.

Provenance: each served job appends one ``engine="served"`` record to
the client's run ledger whose ``result_cache`` field carries the
server-side dedupe tier (``memory`` / ``coalesced`` / ``disk`` /
``remote`` / ``computed``), so a served sweep's ledger still reconciles
row-for-row and shows exactly how much simulation actually happened.

Verified runs are never served: :func:`repro.eval.parallel.run_jobs`
bypasses the client under ``settings.verify`` (and the server would
refuse the batch with a 400) — a served ``verified`` flag would claim a
check that did not execute in this process (DESIGN decision 13).
"""

import json
import os
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Union

from repro.obs import telemetry
from repro.obs.profile import PROFILER
from repro.obs.slog import SLOG
from repro.obs.tracing import TRACE_HEADER, TRACER, format_traceparent
from repro.serve import jsonio
from repro.sim.batch import BatchResult
from repro.sim.result import SimulationResult

__all__ = ["ServeClient", "install", "uninstall"]

#: Per-read socket timeout while streaming a batch, seconds
#: (``REPRO_SERVE_TIMEOUT`` overrides).  Generous: a cold miss holds the
#: stream open for as long as one simulation takes.
DEFAULT_TIMEOUT = 900.0


def _timeout() -> float:
    try:
        return float(os.environ.get("REPRO_SERVE_TIMEOUT", "") or
                     DEFAULT_TIMEOUT)
    except ValueError:
        return DEFAULT_TIMEOUT


class ServeError(RuntimeError):
    """The server rejected a batch or the stream ended early."""


class ServeClient:
    """Resolves job batches against a sweep server (see module docstring).

    Args:
        url: Server base URL, e.g. ``http://127.0.0.1:8077``.
        timeout: Per-read socket timeout in seconds (``None`` → the
            ``REPRO_SERVE_TIMEOUT`` env var, then 900).
    """

    def __init__(self, url: str, timeout: Optional[float] = None):
        self.url = url.rstrip("/")
        self.timeout = _timeout() if timeout is None else timeout
        #: Cumulative per-tier job counts across every batch this client
        #: resolved (the CLI prints them as the served summary).
        self.tier_counts = {
            "memory": 0, "coalesced": 0, "disk": 0, "remote": 0,
            "computed": 0,
        }
        self.batches = 0
        self.jobs_served = 0

    # -- HTTP ---------------------------------------------------------- #

    def healthz(self) -> bool:
        try:
            with urllib.request.urlopen(
                self.url + "/healthz", timeout=self.timeout
            ) as resp:
                return resp.status == 200
        except (urllib.error.URLError, OSError):
            return False

    def server_stats(self) -> dict:
        with urllib.request.urlopen(
            self.url + "/stats", timeout=self.timeout
        ) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def _stream_batch(
        self,
        payload: dict,
        n_jobs: int,
        headers: Optional[Dict[str, str]] = None,
        on_event=None,
    ) -> List[dict]:
        """POST one batch; return its ``result`` events by submission
        index, raising :class:`ServeError` on rejection, a job-level
        server error, or a truncated stream.

        ``headers`` rides extra request headers (the trace-context
        header); ``on_event`` is called with each result event as it
        arrives — the hook that lets ``run_jobs`` close a job's client
        span at the moment its event lands, not when the batch ends.
        """
        req = urllib.request.Request(
            self.url + "/jobs",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
        events: List[Optional[dict]] = [None] * n_jobs
        done = False
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                for raw in resp:
                    line = raw.strip()
                    if not line.startswith(b"data: "):
                        continue
                    event = json.loads(line[len(b"data: "):])
                    etype = event.get("type")
                    if etype == "done":
                        done = True
                    elif etype == "result":
                        if "error" in event:
                            raise ServeError(
                                f"server failed job "
                                f"{event.get('idx')}: {event['error']}"
                            )
                        events[event["idx"]] = event
                        if on_event is not None:
                            on_event(event)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = exc.read().decode("utf-8", "replace")
            except OSError:
                pass
            raise ServeError(
                f"server rejected batch ({exc.code}): {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeError(f"server unreachable: {exc.reason}") from exc
        missing = sum(1 for ev in events if ev is None)
        if not done or missing:
            raise ServeError(
                f"server stream ended early: {missing} of {n_jobs} jobs "
                "unanswered"
            )
        return events  # type: ignore[return-value]

    # -- run_jobs contract --------------------------------------------- #

    def run_jobs(
        self, jobs, settings
    ) -> List[Union[SimulationResult, BatchResult, None]]:
        """Resolve ``jobs`` via the server; submission-order results,
        byte-identical to a local run of the same batch."""
        if not jobs:
            return []
        payload = {
            "settings": jsonio.settings_to_dict(settings),
            "jobs": [jsonio.job_to_dict(job) for job in jobs],
        }
        headers: Dict[str, str] = {}
        batch_span = None
        job_spans: List[Optional[dict]] = [None] * len(jobs)
        on_event = None
        if TRACER.enabled:
            batch_span = TRACER.start(
                "serve.batch", service="client",
                attrs={"jobs": len(jobs), "url": self.url},
            )
            trace_id = batch_span["trace_id"]
            parent = (trace_id, batch_span["span_id"])
            for i, job in enumerate(jobs):
                job_spans[i] = TRACER.start(
                    f"job {job.workload}", parent=parent, service="client",
                    attrs={"workload": job.workload, "config": job.config,
                           "idx": i},
                )
            # Header carries the batch context; the body's trace block
            # names each job's own client span so server resolve spans
            # nest under the exact span awaiting their event.
            headers[TRACE_HEADER] = format_traceparent(trace_id, parent[1])
            payload["trace"] = {
                "trace_id": trace_id,
                "parent": parent[1],
                "jobs": [s["span_id"] for s in job_spans],
            }

            def on_event(event, _spans=job_spans):
                span = _spans[event["idx"]]
                if span is not None:
                    TRACER.finish(span, tier=event.get("tier"))
                    _spans[event["idx"]] = None

        t0 = time.perf_counter()
        try:
            events = self._stream_batch(
                payload, len(jobs), headers=headers, on_event=on_event
            )
        except ServeError as exc:
            if batch_span is not None:
                TRACER.finish(batch_span, error=type(exc).__name__)
            if SLOG.enabled:
                SLOG.log(
                    "client.batch_failed", level="error", url=self.url,
                    jobs=len(jobs), error=str(exc),
                )
            raise
        if batch_span is not None:
            TRACER.finish(batch_span)
        if SLOG.enabled:
            SLOG.request(
                "client.batch", (time.perf_counter() - t0) * 1000.0,
                req_id=(batch_span["trace_id"] if batch_span else None),
                url=self.url, jobs=len(jobs),
            )
        self.batches += 1
        self.jobs_served += len(jobs)
        ledger = telemetry.LEDGER
        results: List[Union[SimulationResult, BatchResult, None]] = []
        for job, event in zip(jobs, events):
            tier = event.get("tier", "computed")
            if tier in self.tier_counts:
                self.tier_counts[tier] += 1
            rows = int(event.get("rows", 1))
            if settings.profile:
                PROFILER.record_sim(
                    job.workload, float(event.get("sim_seconds", 0.0)),
                    runs=rows,
                )
            if ledger.enabled:
                ledger.record(telemetry.RunRecord(
                    workload=job.workload,
                    config=job.clank_config().label(),
                    engine=telemetry.ENGINE_SERVED,
                    result_cache=tier,
                    size=job.size,
                    salt=job.salt,
                    driver=ledger.driver,
                    stalled=bool(event.get("stalled", False)),
                    rows=rows,
                    wall_s=0.0,
                    t_start=ledger.now(),
                    worker=os.getpid(),
                ))
            raw = event.get("result")
            if event.get("batch"):
                results.append(BatchResult.from_dict(raw))
            else:
                results.append(
                    None if raw is None else SimulationResult.from_dict(raw)
                )
        return results

    def summary_line(self) -> str:
        """One human line for the CLI: how the served jobs broke down."""
        tiers = ", ".join(
            f"{name}={count}"
            for name, count in self.tier_counts.items()
            if count
        ) or "none"
        return (
            f"served {self.jobs_served} jobs in {self.batches} batches "
            f"via {self.url} ({tiers})"
        )


def install(client: ServeClient) -> None:
    """Route every subsequent ``run_jobs`` call through ``client``."""
    from repro.eval import parallel

    parallel.SERVED_EXECUTOR = client


def uninstall() -> None:
    """Restore local execution (idempotent)."""
    from repro.eval import parallel

    parallel.SERVED_EXECUTOR = None
