"""Sweep-as-a-service (``repro.serve``).

An asyncio job server plus a drop-in client that turn the sweep engine
into a shared appliance: many users (or CI shards) posting overlapping
:class:`~repro.eval.parallel.SimJob` batches cost one simulation per
*unique* job, because every request is addressed by the same
content-hash key the local result cache uses
(:func:`repro.eval.parallel.result_key`).

* :mod:`repro.serve.server` — the HTTP front, the memory/coalesced/
  disk/remote dedupe funnel, and the thread-pool bridge to the fork
  worker pool.  ``python -m repro.serve`` runs it.
* :mod:`repro.serve.client` — the ``run_jobs``-shaped client the eval
  CLI installs under ``--server URL``.
* :mod:`repro.serve.jsonio` — strict round-trip JSON codecs for jobs
  and settings.

Stdlib only (asyncio streams; no web framework), like the rest of the
repo.
"""

from repro.serve.client import ServeClient, install, uninstall
from repro.serve.server import ServerHandle, SweepServer, start_in_background

__all__ = [
    "ServeClient", "ServerHandle", "SweepServer", "install",
    "start_in_background", "uninstall",
]
