"""JSON codecs for the serving layer's wire format.

Everything that crosses the HTTP boundary is plain JSON built from the
same value types the fork pool already pickles: :class:`SimJob`
descriptors (~50 bytes of primitives), :class:`EvalSettings`, and the
``to_dict`` forms of :class:`~repro.sim.result.SimulationResult` /
:class:`~repro.sim.batch.BatchResult`.  The codecs here are strict
round-trips — ``job_from_dict(job_to_dict(j)) == j`` for every field,
including tuples (JSON lists are converted back) and the nested
:class:`PolicyOptimizations` — so a served job is *the same value* the
client would have executed locally, and its content-addressed result
key (:func:`repro.eval.parallel.result_key`) is identical on both
sides.  Unknown fields are rejected rather than dropped: a key silently
missing on one side would silently change what gets simulated.
"""

from dataclasses import asdict, fields
from typing import Any, Dict

from repro.core.config import PolicyOptimizations
from repro.eval.parallel import SimJob
from repro.eval.settings import EvalSettings

__all__ = [
    "job_from_dict", "job_to_dict", "settings_from_dict",
    "settings_to_dict",
]

_JOB_FIELDS = {f.name for f in fields(SimJob)}
_SETTINGS_FIELDS = {f.name for f in fields(EvalSettings)}
_OPTS_FIELDS = {f.name for f in fields(PolicyOptimizations)}


def job_to_dict(job: SimJob) -> Dict[str, Any]:
    """One job as JSON-safe primitives (tuples become lists)."""
    d = asdict(job)
    d["config"] = list(job.config)
    d["volatile_segments"] = list(job.volatile_segments)
    d["opts"] = None if job.opts is None else asdict(job.opts)
    return d


def job_from_dict(d: Dict[str, Any]) -> SimJob:
    """The exact :class:`SimJob` value ``job_to_dict`` encoded."""
    unknown = set(d) - _JOB_FIELDS
    if unknown:
        raise ValueError(f"unknown SimJob fields: {sorted(unknown)}")
    kwargs = dict(d)
    kwargs["config"] = tuple(int(v) for v in kwargs["config"])
    kwargs["volatile_segments"] = tuple(
        kwargs.get("volatile_segments") or ()
    )
    opts = kwargs.get("opts")
    if opts is not None:
        bad = set(opts) - _OPTS_FIELDS
        if bad:
            raise ValueError(
                f"unknown PolicyOptimizations fields: {sorted(bad)}"
            )
        kwargs["opts"] = PolicyOptimizations(**opts)
    return SimJob(**kwargs)


def settings_to_dict(settings: EvalSettings) -> Dict[str, Any]:
    """Evaluation settings as JSON-safe primitives."""
    return asdict(settings)


def settings_from_dict(d: Dict[str, Any]) -> EvalSettings:
    """The exact :class:`EvalSettings` value ``settings_to_dict`` encoded."""
    unknown = set(d) - _SETTINGS_FIELDS
    if unknown:
        raise ValueError(f"unknown EvalSettings fields: {sorted(unknown)}")
    return EvalSettings(**d)
