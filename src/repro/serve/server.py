"""Asyncio sweep server: SimJob batches in, deduped results out.

One :class:`SweepServer` owns three layers:

* **An HTTP front** (hand-rolled on ``asyncio`` streams — no third-party
  framework): ``POST /jobs`` accepts a JSON batch
  ``{"settings": {...}, "jobs": [...]}`` and streams one Server-Sent
  Event per job as it lands (each ``data:`` line is a JSON object with
  the job's submission index, dedupe tier, result payload, and the
  server-side :class:`RunRecord` ledger lines), ``GET /artifact/{kind}/
  {key}`` serves raw artifact-store bytes to read-through peers
  (``REPRO_CACHE_REMOTE``), ``GET /stats`` reports the dedupe
  funnel plus :func:`repro.cache.cache_stats`, ``GET /metrics`` exposes
  Prometheus-text latency histograms (per-endpoint requests, per-tier
  resolves, SSE stream durations) and gauges, and ``GET /healthz`` is
  the liveness probe.  Requests carrying an ``X-Repro-Trace`` header
  (plus an optional per-job ``trace`` block in the batch body) get their
  server-side spans parented under the caller's trace
  (:mod:`repro.obs.tracing`), and structured request logs flow through
  :mod:`repro.obs.slog` when enabled.
* **A dedupe front** addressed by :func:`repro.eval.parallel.result_key`
  — the same content hash the local result cache uses, so "identical
  request" is decided by simulation inputs, never by client identity.
  Three tiers answer without simulating: an in-memory LRU of recent
  payloads (``memory``), in-flight **single-flight coalescing**
  (``coalesced``: a request whose key is already simulating awaits the
  same future — two clients posting the same key share one execution),
  and the persistent artifact store consulted inside ``execute_job``
  (``disk``, or ``remote`` when the store's read-through tier fetched
  it from a peer).  Only a full miss reaches the simulator
  (``computed``).
* **A thread-pool bridge to the fork worker pool**: each miss occupies
  one bridge thread, which either executes in-process (``--jobs 1``) or
  blocks on ``Pool.apply`` into the same fork pool
  ``repro.eval.parallel`` uses locally — so worker-side behaviour
  (trace caches, artifact flushes, ledger records) is exactly the local
  sweep engine's, and the event loop never blocks on a simulation.

Served batches refuse ``verify=True`` settings with a 400: a served
result would claim a verification that did not execute in the client's
process (DESIGN decision 13).
"""

import asyncio
import json
import os
import re
import threading
import time
import urllib.request
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

import repro.cache as artifact_cache
from repro.obs import telemetry
from repro.obs.metrics import ServingMetrics
from repro.obs.slog import SLOG, new_request_id
from repro.obs.tracing import TRACER, make_span, parse_traceparent
from repro.serve import jsonio

__all__ = ["ServerHandle", "SweepServer", "start_in_background"]

#: In-memory payload LRU entries (``REPRO_SERVE_MEMORY`` overrides).
DEFAULT_MEMORY_ENTRIES = 4096

_ARTIFACT_RE = re.compile(r"^/artifact/([A-Za-z0-9_-]+)/([0-9a-f]{64})$")


def _memory_cap() -> int:
    try:
        return max(0, int(os.environ.get("REPRO_SERVE_MEMORY", "") or
                          DEFAULT_MEMORY_ENTRIES))
    except ValueError:
        return DEFAULT_MEMORY_ENTRIES


def _job_key(job_d: dict, settings_d: dict) -> str:
    """The dedupe key of one wire-format job (bridge-thread work: it may
    build and compile the trace on first sight of a workload)."""
    from repro.eval.parallel import result_key

    return result_key(
        jsonio.job_from_dict(job_d), jsonio.settings_from_dict(settings_d)
    )[1]


def _pool_run(
    job_d: dict, settings_d: dict, trace_parent: Optional[Tuple[str, str]] = None
) -> dict:
    """Execute one wire-format job; runs in a fork-pool worker (or a
    bridge thread under ``--jobs 1``).

    Wraps :func:`repro.eval.parallel.execute_job` — the exact function
    the local sweep engine runs, so served results are byte-identical —
    and captures the provenance records it appends, the disk-tier
    counters it moves, and the payload ``to_dict`` forms the fork pool
    already uses.  When the server hands over a ``trace_parent``
    context, the simulation is wrapped in a worker span shipped back in
    the payload (fork children cannot share the parent's tracer buffer;
    the explicit context also survives the ``run_in_executor`` hop,
    which does not copy contextvars).
    """
    from repro.eval.parallel import execute_job
    from repro.sim.batch import BatchResult

    job = jsonio.job_from_dict(job_d)
    settings = jsonio.settings_from_dict(settings_d)
    span = None
    if trace_parent is not None:
        span = make_span(
            "simulate", "worker", trace_id=trace_parent[0],
            parent_id=trace_parent[1],
            attrs={"workload": job.workload, "config": job.config},
        )
    ledger = telemetry.LEDGER
    was_enabled = ledger.enabled
    before = len(ledger.records)
    disk_before = artifact_cache.stats()
    ledger.enable()
    try:
        result, seconds = execute_job(job, settings)
    finally:
        ledger.enabled = was_enabled
        if span is not None:
            span["t1"] = time.perf_counter()
    records = [rec.to_dict() for rec in ledger.records[before:]]
    # The records travel in the payload, not in process state: this
    # keeps a long-lived server bounded, and keeps an *embedded* server
    # (tests, background-thread harness) from double-counting — the
    # client's ledger gets one engine="served" row per job instead.
    del ledger.records[before:]
    # Pool children exit via os._exit; flush freshly enumerated
    # artifacts to the shared store now, exactly like _worker_run.
    artifact_cache.persist_caches()
    disk_after = artifact_cache.stats()

    if isinstance(result, BatchResult):
        payload_result = result.to_dict()
        is_batch = True
        stalled = False
    else:
        payload_result = (
            None if result is None else result.to_dict(include_derived=False)
        )
        is_batch = False
        stalled = result is None
    engines = [rec.get("engine") for rec in records]
    if engines and all(e == telemetry.ENGINE_CACHED for e in engines):
        remote_delta = (
            disk_after.get("remote_hits", 0)
            - disk_before.get("remote_hits", 0)
        )
        tier = "remote" if remote_delta else "disk"
    else:
        tier = "computed"
    payload = {
        "batch": is_batch,
        "result": payload_result,
        "stalled": stalled,
        "records": records,
        "sim_seconds": seconds,
        "rows": max(1, job.n_seeds),
        "tier": tier,
    }
    if span is not None:
        span["attrs"]["tier"] = tier
        payload["spans"] = [span]
    return payload


class SweepServer:
    """The asyncio job server (see module docstring).

    Args:
        host: Bind address (loopback by default).
        port: Bind port; 0 picks an ephemeral port (read ``url`` after
            :meth:`start`).
        jobs: Worker processes behind the bridge, resolved like the eval
            CLI's ``--jobs`` (``None`` → ``REPRO_JOBS`` or 1; 0 → all
            CPUs).  1 executes in bridge threads without a fork pool.
        memory_entries: In-memory payload LRU cap (``None`` →
            ``REPRO_SERVE_MEMORY`` or 4096; 0 disables the tier).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = None,
        memory_entries: Optional[int] = None,
    ):
        from repro.eval.parallel import resolve_workers

        self.host = host
        self.port = port
        self.n_workers = resolve_workers(jobs)
        self._memory_cap = (
            _memory_cap() if memory_entries is None else max(0, memory_entries)
        )
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._bridge = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="serve-bridge"
        )
        self._pool = None
        if self.n_workers > 1:
            # Created before the event loop runs anything (the
            # constructor is called from plain sync code), so the fork
            # happens on a quiet process; workers inherit warm parent
            # caches exactly like the local sweep engine's pool.
            import multiprocessing

            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(processes=self.n_workers)
        self.counters = {
            "batches": 0,
            "jobs": 0,
            "errors": 0,
            "artifact_requests": 0,
            "artifact_hits": 0,
        }
        self.tiers = {
            "memory": 0, "coalesced": 0, "disk": 0, "remote": 0,
            "computed": 0,
        }
        self.metrics = ServingMetrics()
        self._m_requests = self.metrics.counter(
            "repro_http_requests_total", "HTTP requests by endpoint and status"
        )
        self._m_request_seconds = self.metrics.histogram(
            "repro_http_request_seconds",
            "Wall time per HTTP request by endpoint",
        )
        self._m_resolve_seconds = self.metrics.histogram(
            "repro_resolve_seconds",
            "Per-job dedupe-funnel resolve latency by tier "
            "(one observation per served job)",
        )
        self._m_sse_seconds = self.metrics.histogram(
            "repro_sse_stream_seconds",
            "SSE stream duration per /jobs batch",
        )
        self._m_jobs_in_flight = self.metrics.gauge(
            "repro_jobs_in_flight", "Jobs currently inside the dedupe funnel"
        )
        self._m_inflight_keys = self.metrics.gauge(
            "repro_inflight_keys",
            "Distinct keys currently executing (single-flight table size)",
        )
        self._m_memory_entries = self.metrics.gauge(
            "repro_memory_entries", "Payloads held by the in-memory LRU tier"
        )

    # -- lifecycle ----------------------------------------------------- #

    async def start(self) -> "SweepServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.close_pools()

    def close_pools(self) -> None:
        """Tear down the bridge and fork pool (idempotent, sync)."""
        self._bridge.shutdown(wait=False, cancel_futures=True)
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # -- dedupe + execution -------------------------------------------- #

    def _memory_hit(self, key: str) -> Optional[dict]:
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
        return payload

    def _memory_put(self, key: str, payload: dict) -> None:
        if self._memory_cap <= 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_cap:
            self._memory.popitem(last=False)

    def _execute(
        self, job_d: dict, settings_d: dict,
        trace_parent: Optional[Tuple[str, str]],
    ) -> dict:
        """Bridge-thread entry: run the job in the fork pool, or inline
        when the server is single-worker."""
        if self._pool is not None:
            return self._pool.apply(
                _pool_run, (job_d, settings_d, trace_parent)
            )
        return _pool_run(job_d, settings_d, trace_parent)

    async def _resolve(
        self, key: str, job_d: dict, settings_d: dict,
        trace_parent: Optional[Tuple[str, str]] = None,
    ) -> Tuple[str, dict]:
        """One job through the dedupe funnel; returns ``(tier, payload)``.

        Single-flight: the first request for a key installs a future in
        ``_inflight`` and executes; every concurrent duplicate awaits
        that future and is accounted ``coalesced``.  Completed payloads
        land in the memory LRU, so later duplicates are ``memory`` hits.
        """
        payload = self._memory_hit(key)
        if payload is not None:
            self.tiers["memory"] += 1
            return "memory", payload
        fut = self._inflight.get(key)
        if fut is not None:
            self.tiers["coalesced"] += 1
            return "coalesced", await asyncio.shield(fut)
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._inflight[key] = fut
        self._m_inflight_keys.set(len(self._inflight))
        try:
            payload = await loop.run_in_executor(
                self._bridge, self._execute, job_d, settings_d, trace_parent
            )
        except BaseException as exc:
            fut.set_exception(exc)
            fut.exception()  # consumed: no-waiter futures must not warn
            raise
        else:
            # Worker spans ride the payload exactly once: absorb them
            # into the server tracer *before* the payload is shared with
            # coalesced waiters and the memory LRU, so replays of the
            # payload never duplicate spans.
            spans = payload.pop("spans", None)
            if spans and TRACER.enabled:
                TRACER.add_all(spans)
            fut.set_result(payload)
            tier = payload["tier"]
            self.tiers[tier] += 1
            self._memory_put(key, payload)
            return tier, payload
        finally:
            self._inflight.pop(key, None)
            self._m_inflight_keys.set(len(self._inflight))

    async def _job_event(
        self, idx: int, job_d: dict, settings_d: dict,
        parent: Optional[Tuple[str, str]] = None,
    ) -> dict:
        """Resolve one job into its SSE event dict (never raises).

        ``parent`` is the client-side span context for *this job* (from
        the batch body's trace block, falling back to the request
        header), so the resolve span nests under the exact client span
        awaiting this event.
        """
        loop = asyncio.get_running_loop()
        span = TRACER.start("resolve", parent=parent, service="server") \
            if TRACER.enabled else None
        self._m_jobs_in_flight.inc()
        t0 = time.perf_counter()
        try:
            key = await loop.run_in_executor(
                self._bridge, _job_key, job_d, settings_d
            )
            trace_parent = (
                (span["trace_id"], span["span_id"]) if span else None
            )
            tier, payload = await self._resolve(
                key, job_d, settings_d, trace_parent
            )
        except Exception as exc:
            self.counters["errors"] += 1
            if span is not None:
                TRACER.finish(span, error=type(exc).__name__)
            return {
                "type": "result",
                "idx": idx,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            self._m_jobs_in_flight.dec()
        # One observation per served job — the reconciliation invariant:
        # summed across tiers, this histogram's count equals the number
        # of jobs the ledger records as engine="served".
        self._m_resolve_seconds.observe(
            time.perf_counter() - t0, tier=tier
        )
        if span is not None:
            TRACER.finish(span, tier=tier, key=key[:12])
        event = {"type": "result", "idx": idx, "key": key, "tier": tier}
        event.update(payload)
        # Coalesced/memory replies reuse the original payload, whose
        # "tier" names where the *first* execution was served from.
        event["tier"] = tier
        if tier != "computed":
            event["sim_seconds"] = 0.0
        return event

    # -- stats --------------------------------------------------------- #

    def stats_snapshot(self) -> dict:
        return {
            "server": {
                **self.counters,
                "tiers": dict(self.tiers),
                "inflight": len(self._inflight),
                "memory_entries": len(self._memory),
                "memory_cap": self._memory_cap,
                "workers": self.n_workers,
            },
            "cache": artifact_cache.cache_stats(),
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /metrics``: the labeled
        serving families plus point-in-time gauges and the process-wide
        funnel / cache counters."""
        self._m_inflight_keys.set(len(self._inflight))
        self._m_memory_entries.set(len(self._memory))
        extra = {
            f"repro_server_{name}": value
            for name, value in self.counters.items()
        }
        for tier, n in self.tiers.items():
            extra[f"repro_resolve_tier_total_{tier}"] = n
        for name, value in artifact_cache.cache_stats().items():
            extra[f"repro_cache_{name}"] = value
        return self.metrics.render(extra_counters=extra)

    # -- HTTP ---------------------------------------------------------- #

    async def _handle(self, reader, writer) -> None:
        endpoint = status = None
        t0 = time.perf_counter()
        req_ctx = None
        try:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            request_line, _, header_blob = head.partition(b"\r\n")
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0].upper(), parts[1]
            headers = {}
            for line in header_blob.decode("latin-1").split("\r\n"):
                name, sep, value = line.partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = await reader.readexactly(length)
            req_ctx = parse_traceparent(headers.get("x-repro-trace"))

            if method == "GET" and path == "/healthz":
                endpoint = "/healthz"
                status = self._plain(writer, 200, b'{"ok": true}')
            elif method == "GET" and path == "/metrics":
                endpoint = "/metrics"
                status = self._plain(
                    writer, 200, self.metrics_text().encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif method == "GET" and path == "/stats":
                endpoint = "/stats"
                blob = json.dumps(
                    self.stats_snapshot(), indent=2, sort_keys=True
                ).encode("utf-8")
                status = self._plain(writer, 200, blob)
            elif method == "GET" and _ARTIFACT_RE.match(path):
                endpoint = "/artifact"
                status = self._handle_artifact(writer, path)
            elif method == "POST" and path == "/jobs":
                endpoint = "/jobs"
                status = await self._handle_jobs(writer, body, req_ctx)
            else:
                endpoint = "other"
                status = self._plain(writer, 404, b'{"error": "not found"}')
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            if endpoint is not None:
                wall = time.perf_counter() - t0
                # ``status`` is None when the client hung up mid-handler.
                self._m_requests.inc(
                    endpoint=endpoint,
                    status=str(status) if status else "hup",
                )
                self._m_request_seconds.observe(wall, endpoint=endpoint)
                if SLOG.enabled:
                    SLOG.request(
                        "http.request", wall * 1000.0,
                        req_id=(req_ctx[0] if req_ctx else new_request_id()),
                        endpoint=endpoint, status=status,
                    )
            if TRACER.enabled:
                TRACER.flush()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _plain(
        writer, status: int, body: bytes,
        content_type: str = "application/json",
    ) -> int:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        return status

    def _handle_artifact(self, writer, path: str) -> int:
        """Serve one artifact's raw pickled bytes to a read-through peer."""
        self.counters["artifact_requests"] += 1
        match = _ARTIFACT_RE.match(path)
        kind, key = match.group(1), match.group(2)
        st = artifact_cache.store()
        blob = None
        if st is not None:
            try:
                with open(st.raw_path(kind, key), "rb") as fh:
                    blob = fh.read()
            except OSError:
                blob = None
        if blob is None:
            return self._plain(writer, 404, b'{"error": "artifact not found"}')
        self.counters["artifact_hits"] += 1
        return self._plain(
            writer, 200, blob, content_type="application/octet-stream"
        )

    async def _handle_jobs(
        self, writer, body: bytes,
        req_ctx: Optional[Tuple[str, str]] = None,
    ) -> int:
        """``POST /jobs``: resolve a batch, streaming SSE as jobs land.

        ``req_ctx`` is the parsed ``X-Repro-Trace`` header — the client's
        batch span.  The optional body ``trace`` block refines it with
        per-job client span ids, so each resolve span parents under the
        exact client span awaiting its event::

            {"trace": {"trace_id": "...", "jobs": ["<span_id>", ...]}}
        """
        try:
            req = json.loads(body.decode("utf-8"))
            settings_d = dict(req["settings"])
            job_dicts = list(req["jobs"])
            jsonio.settings_from_dict(settings_d)  # validate field names
        except Exception as exc:
            return self._plain(
                writer, 400,
                json.dumps({"error": f"bad batch: {exc}"}).encode("utf-8"),
            )
        if settings_d.get("verify"):
            return self._plain(
                writer, 400,
                b'{"error": "served results cannot claim --verify; '
                b'run verification locally"}',
            )
        job_parents = [req_ctx] * len(job_dicts)
        trace_block = req.get("trace")
        if isinstance(trace_block, dict):
            trace_id = trace_block.get("trace_id") or (
                req_ctx[0] if req_ctx else None
            )
            job_span_ids = trace_block.get("jobs") or []
            if trace_id:
                for i, span_id in enumerate(job_span_ids[:len(job_dicts)]):
                    if span_id:
                        job_parents[i] = (trace_id, span_id)
        self.counters["batches"] += 1
        self.counters["jobs"] += len(job_dicts)
        batch_span = (
            TRACER.start("/jobs", parent=req_ctx, service="server",
                         attrs={"jobs": len(job_dicts)})
            if TRACER.enabled else None
        )
        t0 = time.perf_counter()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        tasks = [
            asyncio.ensure_future(
                self._job_event(i, jd, settings_d, job_parents[i])
            )
            for i, jd in enumerate(job_dicts)
        ]
        broken = False
        for next_done in asyncio.as_completed(tasks):
            # Always await every task — coalesced waiters and the
            # inflight table depend on each one running to completion —
            # even after the client hangs up.
            event = await next_done
            if broken:
                continue
            try:
                writer.write(
                    b"data: "
                    + json.dumps(event, separators=(",", ":")).encode("utf-8")
                    + b"\n\n"
                )
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                broken = True
        if not broken:
            writer.write(
                b"data: "
                + json.dumps({"type": "done", "jobs": len(job_dicts)})
                .encode("utf-8")
                + b"\n\n"
            )
        stream_s = time.perf_counter() - t0
        self._m_sse_seconds.observe(stream_s)
        if batch_span is not None:
            TRACER.finish(batch_span, broken=broken)
        if SLOG.enabled:
            SLOG.request(
                "serve.batch", stream_s * 1000.0,
                req_id=(req_ctx[0] if req_ctx else new_request_id()),
                jobs=len(job_dicts), broken=broken,
            )
        return 200


# --------------------------------------------------------------------- #
# Background-thread harness (tests and embedding).
# --------------------------------------------------------------------- #


class ServerHandle:
    """A running server on a background thread; ``stop()`` tears it down."""

    def __init__(self, server: SweepServer, loop, thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    def stats(self) -> dict:
        with urllib.request.urlopen(self.url + "/stats", timeout=10) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)


def start_in_background(
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: Optional[int] = 1,
    memory_entries: Optional[int] = None,
) -> ServerHandle:
    """Start a :class:`SweepServer` on its own event-loop thread and
    return once it is accepting connections (used by the test suite and
    by embedders; the CLI runs the loop in the foreground)."""
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = SweepServer(
            host=host, port=port, jobs=jobs, memory_entries=memory_entries
        )
        box["loop"], box["server"] = loop, server
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind failures to the caller
            box["error"] = exc
            ready.set()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("sweep server failed to start within 30s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["loop"], thread)
