"""CLI entry: ``python -m repro.serve`` runs a sweep server.

Binds, prints ``serving on http://host:port`` (flushed, so wrappers can
wait for readiness by reading one line), then serves until interrupted.
Set ``REPRO_CACHE_DIR`` to give the server a persistent artifact store
— without it only the in-memory and coalescing tiers dedupe — and
``REPRO_CACHE_REMOTE`` to read through to another server's
``/artifact`` endpoint.

Observability: ``--trace PATH`` (or ``REPRO_TRACE``) exports server-side
request/resolve/worker spans as JSONL, flushed after every request;
``--slog SINK`` (or ``REPRO_SLOG``, ``stderr`` or a path) emits
structured JSON request logs with ``REPRO_SLOG_SLOW_MS`` escalation;
``GET /metrics`` and ``GET /healthz`` are always on.
"""

import argparse
import asyncio
import sys

from repro.obs import slog, tracing
from repro.serve.server import SweepServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve SimJob batches with cache dedupe and "
        "single-flight coalescing.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8077,
                        help="bind port; 0 picks one (default 8077)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default REPRO_JOBS or 1; "
                        "0 = all CPUs)")
    parser.add_argument("--memory", type=int, default=None,
                        help="in-memory payload LRU entries "
                        "(default REPRO_SERVE_MEMORY or 4096; 0 disables)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="export request/resolve/worker spans as JSONL "
                        "to PATH (default REPRO_TRACE; off without either)")
    parser.add_argument("--slog", default=None, metavar="SINK",
                        help="structured JSON request logs to SINK "
                        "('stderr' or a path; default REPRO_SLOG)")
    args = parser.parse_args(argv)

    if args.trace:
        tracing.TRACER.enable(service="server", export_path=args.trace)
    else:
        tracing.configure_from_env("server")
    if args.slog:
        slog.SLOG.enable(args.slog)
    else:
        slog.configure_from_env()

    server = SweepServer(
        host=args.host, port=args.port, jobs=args.jobs,
        memory_entries=args.memory,
    )
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        loop.run_until_complete(server.start())
        print(f"serving on {server.url}", flush=True)
        print(
            f"  workers={server.n_workers}  "
            f"POST /jobs | GET /artifact/{{kind}}/{{key}} | GET /stats "
            f"| GET /metrics | GET /healthz",
            flush=True,
        )
        loop.run_until_complete(server.serve_forever())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        loop.run_until_complete(server.aclose())
        loop.close()
        tracing.TRACER.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
