"""Legacy setup shim for editable installs on older setuptools."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Clank: Architectural Support for Intermittent "
        "Computation (ISCA 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
