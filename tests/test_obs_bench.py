"""The ``python -m repro.obs.bench`` trajectory regression checker."""

import json
import os

import pytest

from repro.obs import bench
from repro.obs.bench import (
    BenchVerdict, cache_state, check_history, comparable_key, load_history,
)

FULL = ["table1", "fig5", "fig7"]


def entry(ms, jobs=1, disk_cache=None, experiments=FULL, **extra):
    e = {"timestamp": "2026-08-07T00:00:00+00:00",
         "experiments": list(experiments), "jobs": jobs, "ms_per_run": ms}
    if disk_cache is not None:
        e["disk_cache"] = disk_cache
    e.update(extra)
    return e


class TestCacheState:
    def test_no_disk_cache_key_is_off(self):
        assert cache_state(entry(1.0)) == "off"

    def test_disabled_store_is_off(self):
        e = entry(1.0, disk_cache={"enabled": False, "hits": 0, "misses": 0})
        assert cache_state(e) == "off"

    def test_zero_misses_is_warm(self):
        e = entry(1.0, disk_cache={"enabled": True, "hits": 50, "misses": 0})
        assert cache_state(e) == "warm"

    def test_populating_store_is_cold(self):
        e = entry(1.0, disk_cache={"enabled": True, "hits": 3, "misses": 40})
        assert cache_state(e) == "cold"


class TestComparableKey:
    def test_experiment_order_is_irrelevant(self):
        a = entry(1.0, experiments=["fig5", "fig7"])
        b = entry(2.0, experiments=["fig7", "fig5"])
        assert comparable_key(a) == comparable_key(b)

    def test_jobs_and_cache_state_split_buckets(self):
        assert comparable_key(entry(1.0, jobs=1)) != \
            comparable_key(entry(1.0, jobs=4))
        warm = entry(1.0, disk_cache={"enabled": True, "misses": 0})
        assert comparable_key(entry(1.0)) != comparable_key(warm)


class TestCheckHistory:
    def test_empty_history_passes(self):
        verdict = check_history([])
        assert verdict.ok
        assert "empty" in verdict.reason

    def test_missing_metric_passes(self):
        verdict = check_history([entry(1.0), entry(None)])
        assert verdict.ok

    def test_no_comparable_baseline_passes(self):
        history = [entry(1.0, jobs=4), entry(99.0, jobs=1)]
        assert check_history(history).ok

    def test_improvement_passes_with_ratio(self):
        verdict = check_history([entry(2.0), entry(1.0)])
        assert verdict.ok
        assert verdict.ratio == pytest.approx(0.5)
        assert verdict.baseline["ms_per_run"] == 2.0

    def test_synthetic_2x_regression_fails(self):
        """The acceptance check: doubling the newest comparable entry's
        ms_per_run must trip the default 1.25x gate."""
        history = [entry(1.0), entry(2.0)]
        verdict = check_history(history)
        assert not verdict.ok
        assert verdict.ratio == pytest.approx(2.0)
        assert "regressed" in verdict.reason

    def test_best_prior_is_the_baseline(self):
        history = [entry(5.0), entry(1.0), entry(3.0), entry(1.2)]
        verdict = check_history(history)
        assert verdict.ok
        assert verdict.baseline["ms_per_run"] == 1.0
        assert verdict.ratio == pytest.approx(1.2)

    def test_incomparable_entries_do_not_gate(self):
        """A warm-cache 0.003 ms/run entry must not make a cache-off
        0.5 ms/run entry look like a 100x regression."""
        warm = entry(0.003, disk_cache={"enabled": True, "hits": 9,
                                        "misses": 0})
        history = [entry(0.6), warm, entry(0.5)]
        verdict = check_history(history)
        assert verdict.ok
        assert verdict.baseline["ms_per_run"] == 0.6

    def test_threshold_is_configurable(self):
        history = [entry(1.0), entry(1.1)]
        assert check_history(history, threshold=1.25).ok
        assert not check_history(history, threshold=1.05).ok


_REPO_BENCH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_sweep.json"
)


class TestCommittedTrajectory:
    def test_repo_history_passes_the_gate(self):
        """The committed BENCH_sweep.json must pass its own CI gate."""
        history = load_history(_REPO_BENCH)
        assert check_history(history).ok

    def test_repo_history_fails_on_synthetic_2x(self):
        history = load_history(_REPO_BENCH)
        doubled = dict(history[-1])
        doubled["ms_per_run"] = history[-1]["ms_per_run"] * 2
        assert not check_history(history + [doubled]).ok


class TestRender:
    def test_marks_newest_and_baseline(self):
        history = [entry(2.0), entry(1.0)]
        verdict = check_history(history)
        text = bench.render(history, verdict)
        assert "<- baseline" in text
        assert "<- newest" in text
        assert text.endswith(f"PASS: {verdict.reason}")

    def test_fail_line(self):
        history = [entry(1.0), entry(2.0)]
        text = bench.render(history, check_history(history))
        assert "FAIL:" in text


class TestCli:
    def _write(self, tmp_path, history):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"history": history}))
        return str(path)

    def test_check_passes_on_flat_trajectory(self, tmp_path, capsys):
        path = self._write(tmp_path, [entry(1.0), entry(1.0)])
        assert bench.main(["--path", path, "--check"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        path = self._write(tmp_path, [entry(1.0), entry(2.0)])
        assert bench.main(["--path", path, "--check"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_regression_without_check_reports_but_passes(self, tmp_path):
        path = self._write(tmp_path, [entry(1.0), entry(2.0)])
        assert bench.main(["--path", path]) == 0

    def test_missing_file_passes(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert bench.main(["--path", missing, "--check"]) == 0
        assert "no bench history" in capsys.readouterr().out

    def test_malformed_file_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"not_history": []}')
        assert bench.main(["--path", str(path), "--check"]) == 2
        assert "error" in capsys.readouterr().err

    def test_verdict_dataclass_defaults(self):
        v = BenchVerdict(True, "ok")
        assert v.newest is None and v.ratio is None
