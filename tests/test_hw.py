"""Unit tests for the hardware cost model (Table 2)."""

import pytest

from repro.core.config import ClankConfig, table2_configs
from repro.hw.cost_model import (
    PAPER_TABLE2,
    PAPER_TABLE2_SOFTWARE,
    hardware_overhead,
)


class TestHardwareModel:
    def test_power_is_average_of_areas(self):
        hw = hardware_overhead(ClankConfig.from_tuple((16, 0, 0, 0)))
        expect = (hw.lut_fraction + hw.ff_fraction + hw.mem_fraction) / 3
        assert hw.power_fraction == pytest.approx(expect)

    def test_magnitude_matches_paper(self):
        # Every Table 2 composition lands in the paper's low-single-digit
        # percent regime.
        for cfg in table2_configs():
            hw = hardware_overhead(cfg)
            lut, ff, mem, avg = hw.row()
            assert 1.0 < lut < 6.0
            assert 0.2 < ff < 4.0
            assert 0.05 < mem < 1.0
            assert 0.5 < avg < 3.0

    def test_monotone_in_buffer_bits(self):
        small = hardware_overhead(ClankConfig.from_tuple((1, 0, 0, 0)))
        big = hardware_overhead(ClankConfig.from_tuple((24, 8, 4, 0)))
        assert big.mem_fraction > small.mem_fraction
        assert big.lut_fraction > small.lut_fraction

    def test_watchdogs_add_logic(self):
        cfg = ClankConfig.from_tuple((16, 8, 4, 4))
        base = hardware_overhead(cfg, watchdogs=False)
        wdt = hardware_overhead(cfg, watchdogs=True)
        assert wdt.lut_fraction > base.lut_fraction
        assert wdt.ff_fraction > base.ff_fraction
        assert wdt.mem_fraction == base.mem_fraction

    def test_paper_tables_complete(self):
        for cfg in table2_configs():
            assert cfg.label() in PAPER_TABLE2
        assert "16,8,4,4+C+WDT" in PAPER_TABLE2_SOFTWARE

    def test_paper_software_trend_decreasing(self):
        values = list(PAPER_TABLE2_SOFTWARE.values())
        assert values == sorted(values, reverse=True)

    def test_row_is_percent(self):
        hw = hardware_overhead(ClankConfig.from_tuple((16, 0, 0, 0)))
        assert hw.row()[0] == pytest.approx(100 * hw.lut_fraction)
