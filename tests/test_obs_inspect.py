"""The ``python -m repro.obs.inspect`` event-log summarizer."""

import json

from repro.core.config import ClankConfig
from repro.obs.inspect import main, summarize, summarize_data
from repro.obs.recorder import JsonlRecorder, read_events
from repro.obs.telemetry import RunLedger, RunRecord
from repro.power.schedules import ExponentialPower
from repro.sim.simulator import simulate

from tests.conftest import rmw_trace


def record_log(path):
    with JsonlRecorder(path) as rec:
        result = simulate(
            rmw_trace(400, addrs=16),
            ClankConfig.from_tuple((4, 2, 2, 0)),
            ExponentialPower(800, seed=5),
            progress_watchdog=300,
            verify=True,
            recorder=rec,
        )
    return result


class TestSummarize:
    def test_sections_present(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        result = record_log(path)
        text = summarize(read_events(path))
        assert "event counts" in text
        assert "checkpoints by cause" in text
        assert "power:" in text
        assert f"{result.power_cycles - 1} failures" in text
        # every committed cause is named
        for cause in result.checkpoints_by_cause:
            assert cause in text

    def test_empty_log(self):
        assert summarize([]).startswith("event log: 0 events")


class TestSummarizeData:
    def test_machine_readable_mirror(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        result = record_log(path)
        events = read_events(path)
        data = summarize_data(events)
        assert data["events"] == len(events)
        assert data["power"]["failures"] == result.power_cycles - 1
        for cause in result.checkpoints_by_cause:
            assert cause in data["checkpoints"]
        json.dumps(data)  # fully JSON-serializable

    def test_empty(self):
        assert summarize_data([]) == {"events": 0, "counts": {}}


class TestCli:
    def test_main_prints_summary(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        record_log(path)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "event counts" in out
        assert "checkpoint_committed" in out

    def test_json_format(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        record_log(path)
        assert main([path, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["events"] > 0
        assert "checkpoint_committed" in data["counts"]

    def test_run_ledger_input_delegates_to_report(self, tmp_path, capsys):
        led = RunLedger()
        led.enable()
        led.record(RunRecord(workload="crc", config="1,0,0,0",
                             engine="fast", kernel="c"))
        path = str(tmp_path / "ledger.jsonl")
        led.write_jsonl(path)
        assert main([path]) == 0
        assert "engine mix" in capsys.readouterr().out
        assert main([path, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engines"] == {"fast": 1}

    def test_module_is_runnable(self):
        # ``python -m repro.obs.inspect`` resolves to this module's main().
        import repro.obs.inspect as mod

        assert callable(mod.main)
