"""Unit tests for the Thumb-subset assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble


def one(src, op=None):
    """Assemble a one-instruction program and return its Ins."""
    prog = assemble("_start:\n    " + src + "\n    bkpt\n")
    ins = prog.instructions[prog.entry]
    if op:
        assert ins.op == op
    return ins


class TestEncoding:
    def test_movs_imm(self):
        ins = one("movs r0, #42", "movs_imm")
        assert ins.args == (0, 42)

    def test_movs_reg(self):
        assert one("movs r1, r2", "movs_reg").args == (1, 2)

    def test_adds_three_forms(self):
        assert one("adds r0, r1, r2", "adds_reg").args == (0, 1, 2)
        assert one("adds r0, r1, #3", "adds_imm3").args == (0, 1, 3)
        assert one("adds r0, #200", "adds_imm8").args == (0, 200)

    def test_two_operand_adds_expands(self):
        assert one("adds r0, r1", "adds_reg").args == (0, 0, 1)

    def test_sp_relative(self):
        assert one("add sp, #16", "add_sp_imm").args == (16,)
        assert one("sub sp, #8", "sub_sp_imm").args == (8,)
        assert one("add r2, sp, #4", "add_rd_sp").args == (2, 4)

    def test_cmp_and_tst(self):
        assert one("cmp r3, #9", "cmp_imm").args == (3, 9)
        assert one("cmp r3, r4", "cmp_reg").args == (3, 4)
        assert one("tst r1, r2", "tst_reg").args == (1, 2)

    def test_shifts(self):
        assert one("lsls r0, r1, #3", "lsl_imm").args == (0, 1, 3)
        assert one("lsrs r0, r1", "lsr_reg").args == (0, 1)
        assert one("asrs r2, r3, #31", "asr_imm").args == (2, 3, 31)

    def test_alu_two_ops(self):
        assert one("eors r0, r1", "eors").args == (0, 1)
        assert one("muls r0, r1", "muls").args == (0, 1)
        assert one("uxtb r2, r3", "uxtb").args == (2, 3)

    def test_load_store_forms(self):
        assert one("ldr r0, [r1]", "ldr_imm").args == (0, 1, 0)
        assert one("ldr r0, [r1, #8]", "ldr_imm").args == (0, 1, 8)
        assert one("str r0, [r1, r2]", "str_reg").args == (0, 1, 2)
        assert one("ldrb r0, [r1, #1]", "ldrb_imm").args == (0, 1, 1)
        assert one("strh r5, [r6, #2]", "strh_imm").args == (5, 6, 2)

    def test_push_pop_register_lists(self):
        assert one("push {r0, r4, lr}", "push").args == (0, 4, 14)
        assert one("pop {r4, pc}", "pop").args == (4, 15)

    def test_sp_lr_pc_aliases(self):
        assert one("mov r0, sp", "mov_reg").args == (0, 13)

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AssemblyError):
            assemble("_start:\n    frobnicate r0\n")

    def test_bad_register_raises(self):
        with pytest.raises(AssemblyError):
            assemble("_start:\n    movs r99, #1\n")

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble("_start:\n    b nowhere\n")


class TestLayout:
    def test_instruction_addresses_are_halfword(self):
        prog = assemble("_start:\n    nop\n    nop\n    bkpt\n")
        assert sorted(prog.instructions) == [0, 2, 4]

    def test_bl_is_four_bytes(self):
        prog = assemble(
            "_start:\n    bl f\n    bkpt\nf:\n    bx lr\n"
        )
        assert sorted(prog.instructions) == [0, 4, 6]
        assert prog.symbols["f"] == 6

    def test_literal_pool_after_code(self):
        prog = assemble("_start:\n    ldr r0, =0x12345678\n    bkpt\n")
        ins = prog.instructions[0]
        assert ins.op == "ldr_lit"
        pool_addr = ins.args[1]
        assert pool_addr >= 4
        word = sum(
            prog.data_image.get(pool_addr + i, 0) << (8 * i) for i in range(4)
        )
        assert word == 0x12345678
        assert prog.text_end > pool_addr

    def test_duplicate_literals_shared(self):
        prog = assemble(
            "_start:\n    ldr r0, =99\n    ldr r1, =99\n    bkpt\n"
        )
        a = prog.instructions[0].args[1]
        b = prog.instructions[2].args[1]
        assert a == b

    def test_data_section_and_labels(self):
        prog = assemble(
            """
            .data
x:  .word 7
y:  .byte 1, 2
            .align 4
z:  .word 0xAABBCCDD
            .text
_start:
    bkpt
"""
        )
        assert prog.symbols["x"] == 0x2000_0000
        image = prog.initial_word_image()
        assert image[prog.symbols["x"] >> 2] == 7
        assert image[prog.symbols["z"] >> 2] == 0xAABBCCDD

    def test_asciz(self):
        prog = assemble('.data\ns: .asciz "hi"\n.text\n_start:\n    bkpt\n')
        base = prog.symbols["s"]
        assert prog.data_image[base] == ord("h")
        assert prog.data_image[base + 2] == 0

    def test_equ_constants(self):
        prog = assemble(
            ".equ N, 12\n_start:\n    movs r0, #N\n    bkpt\n"
        )
        assert prog.instructions[0].args == (0, 12)

    def test_comments_ignored(self):
        prog = assemble(
            "_start:   ; entry\n    nop   @ do nothing\n    bkpt // stop\n"
        )
        assert len(prog.instructions) == 2
        assert prog.instructions[0].op == "nop"

    def test_entry_defaults_to_text_base(self):
        prog = assemble("begin:\n    bkpt\n")
        assert prog.entry == 0
