"""Unit tests for the observability event types and recorders."""

import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    BufferOverflow,
    CheckpointAborted,
    CheckpointCommitted,
    OutputCommitted,
    PowerFailure,
    Rollback,
    SectionClosed,
    WatchdogFired,
    WatchdogHalved,
    event_from_dict,
)
from repro.obs.recorder import (
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    live_recorder,
    read_events,
)

SAMPLE_EVENTS = [
    PowerFailure(t=10, power_cycle=1, index=5, phase="run", progress=True),
    PowerFailure(t=12, power_cycle=2, phase="restart"),
    Rollback(t=10, from_index=5, to_index=2),
    CheckpointCommitted(t=40, cause="rf_full", cycles=8, index=7,
                        flushed_words=2, power_cycle=3),
    CheckpointAborted(t=55, cause="final", needed_cycles=9,
                      available_cycles=3, index=9),
    SectionClosed(t=32, cause="rf_full", accesses=5, cycles=30),
    BufferOverflow(buffer="wbb", waddr=0x0800_0000, op="write"),
    WatchdogFired(t=70, watchdog="progress", index=11, load_value=150),
    WatchdogHalved(load_value=75),
    OutputCommitted(t=90, index=12, waddr=0x1000_0000, duplicate=True),
]


class TestEvents:
    def test_every_kind_registered(self):
        kinds = {e.kind for e in SAMPLE_EVENTS}
        assert kinds == set(EVENT_TYPES)

    @pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: e.kind)
    def test_dict_round_trip(self, event):
        d = event.to_dict()
        assert d["kind"] == event.kind
        json.dumps(d)  # must be JSON-serializable
        assert event_from_dict(d) == event

    def test_from_dict_ignores_unknown_keys(self):
        d = Rollback(t=1, from_index=3, to_index=1).to_dict()
        d["future_field"] = "whatever"
        assert event_from_dict(d) == Rollback(t=1, from_index=3, to_index=1)

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "no_such_event"})

    def test_rollback_accesses_discarded(self):
        assert Rollback(from_index=7, to_index=3).accesses_discarded == 4


class TestRecorders:
    def test_null_recorder_drops_everything(self):
        rec = NullRecorder()
        for e in SAMPLE_EVENTS:
            rec.emit(e)  # no storage, no error

    def test_memory_recorder_collects_in_order(self):
        rec = MemoryRecorder()
        for e in SAMPLE_EVENTS:
            rec.emit(e)
        assert list(rec) == SAMPLE_EVENTS
        assert len(rec) == len(SAMPLE_EVENTS)
        assert rec.of_kind("power_failure") == SAMPLE_EVENTS[:2]
        assert rec.counts()["power_failure"] == 2

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JsonlRecorder(path) as rec:
            for e in SAMPLE_EVENTS:
                rec.emit(e)
        assert rec.count == len(SAMPLE_EVENTS)
        # Each line is a standalone JSON object.
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == len(SAMPLE_EVENTS)
        for line in lines:
            json.loads(line)
        assert read_events(path) == SAMPLE_EVENTS

    def test_read_events_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "rollback"}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            read_events(str(path))

    def test_live_recorder_normalization(self):
        mem = MemoryRecorder()
        assert live_recorder(None) is None
        assert live_recorder(NullRecorder()) is None
        assert live_recorder(mem) is mem
