"""Unit tests for the runtime cost model."""

import pytest

from repro.runtime.costs import CostModel, DEFAULT_COST_MODEL


class TestCostModel:
    def test_register_checkpoint_is_40_cycles(self):
        # Anchored to the paper: "40 for our implementation" (Section 4.1).
        assert DEFAULT_COST_MODEL.register_checkpoint_cycles == 40

    def test_checkpoint_without_wbb(self):
        assert DEFAULT_COST_MODEL.checkpoint_cycles() == 40

    def test_wbb_flush_adds_per_entry_cost(self):
        cost = DEFAULT_COST_MODEL
        assert cost.checkpoint_cycles(wbb_entries=3) == 40 + 2 + 3 * 8

    def test_mixed_volatility_words_add_cost(self):
        cost = DEFAULT_COST_MODEL
        assert cost.checkpoint_cycles(dirty_volatile_words=10) == 40 + 20

    def test_restart_cost(self):
        assert DEFAULT_COST_MODEL.restart_cycles() == 10 + 17 * 2

    def test_restart_with_volatile_restore(self):
        assert DEFAULT_COST_MODEL.restart_cycles(volatile_words=5) == 44 + 10

    def test_reserved_bytes_structure(self):
        cost = DEFAULT_COST_MODEL
        base = cost.reserved_bytes(wbb_entries=0, watchdogs=False)
        with_wbb = cost.reserved_bytes(wbb_entries=4, watchdogs=False)
        with_wdt = cost.reserved_bytes(wbb_entries=0, watchdogs=True)
        assert with_wbb == base + 4 * 8  # scratchpad scales with WBB
        assert with_wdt > base

    def test_custom_model(self):
        tiny = CostModel(
            checkpoint_reg_words=4,
            nv_word_cycles=1,
            checkpoint_base_cycles=0,
        )
        assert tiny.register_checkpoint_cycles == 4
