"""Parallel sweep engine: determinism, serial fallback, profiler merge."""

import dataclasses

import pytest

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.eval import parallel
from repro.eval.parallel import SimJob, execute_job, resolve_workers, run_jobs
from repro.eval.settings import EvalSettings
from repro.obs.profile import PROFILER, Profiler

QUICK = EvalSettings(size="small", sweep_size="tiny", seed=2)

WORKLOADS = ("crc", "qsort", "aes")
CONFIGS = ((1, 0, 0, 0), (8, 8, 0, 0), (8, 4, 2, 0), (16, 8, 4, 4))
SALTS = (0, 1)


def grid_jobs():
    """The 3 workloads x 4 configs x 2 salts determinism grid."""
    return [
        SimJob(workload=w, config=c, size="tiny", salt=s)
        for w in WORKLOADS
        for c in CONFIGS
        for s in SALTS
    ]


class TestSimJob:
    def test_clank_config_round_trip(self):
        job = SimJob(workload="crc", config=(8, 4, 2, 0))
        assert job.clank_config() == ClankConfig.from_tuple((8, 4, 2, 0))

    def test_opts_and_prefix_bits(self):
        opts = PolicyOptimizations.none()
        job = SimJob(
            workload="crc", config=(16, 8, 4, 2), opts=opts, prefix_low_bits=4
        )
        config = job.clank_config()
        assert config.optimizations == opts
        assert config.prefix_low_bits == 4

    def test_heavy_workloads_outweigh_default(self):
        heavy = SimJob(workload="aes", config=(1, 0, 0, 0))
        unknown = SimJob(workload="crc", config=(1, 0, 0, 0))
        assert heavy.weight() > unknown.weight()

    def test_descriptors_are_tiny(self):
        import pickle

        blob = pickle.dumps(SimJob(workload="aes", config=(16, 8, 4, 4)))
        assert len(blob) < 1024  # a trace would be megabytes


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_workers(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_workers(None) == 1

    def test_zero_means_all_cpus(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_workers(None) == 1


class TestDeterminism:
    @pytest.mark.slow
    def test_parallel_bit_identical_to_serial(self):
        """The satellite contract: 3 workloads x 4 configs x 2 salts,
        every SimulationResult field equal between jobs=1 and jobs=2."""
        jobs = grid_jobs()
        serial = run_jobs(jobs, QUICK, n_workers=1)
        par = run_jobs(jobs, QUICK, n_workers=2)
        assert len(serial) == len(par) == len(jobs)
        for a, b in zip(serial, par):
            assert a.to_dict() == b.to_dict()

    def test_results_in_submission_order(self):
        jobs = [
            SimJob(workload="crc", config=(1, 0, 0, 0), size="tiny", salt=s)
            for s in range(4)
        ]
        results = run_jobs(jobs, QUICK, n_workers=2)
        # Different salts give different schedules, hence different runs;
        # order must follow submission, not completion.
        expected = [execute_job(j, QUICK)[0] for j in jobs]
        assert [r.to_dict() for r in results] == [
            e.to_dict() for e in expected
        ]


class TestSerialFallback:
    def test_jobs1_never_creates_a_pool(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("serial path must not build a pool")

        monkeypatch.setattr(parallel, "_make_pool", boom)
        jobs = grid_jobs()[:3]
        results = run_jobs(jobs, QUICK, n_workers=1)
        assert all(r is not None for r in results)

    def test_single_job_stays_serial_even_with_workers(self, monkeypatch):
        monkeypatch.setattr(
            parallel,
            "_make_pool",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool")),
        )
        [result] = run_jobs(grid_jobs()[:1], QUICK, n_workers=4)
        assert result is not None

    def test_serial_matches_execute_job(self):
        job = SimJob(workload="qsort", config=(8, 4, 2, 0), size="tiny")
        [from_engine] = run_jobs([job], QUICK, n_workers=1)
        direct, _ = execute_job(job, QUICK)
        assert from_engine.to_dict() == direct.to_dict()


class TestProfilerMerge:
    def test_parallel_run_merges_sim_time_and_worker_cache(self):
        PROFILER.reset()
        jobs = [
            SimJob(workload="crc", config=(1, 0, 0, 0), size="tiny", salt=s)
            for s in range(4)
        ]
        run_jobs(jobs, QUICK, n_workers=2)
        try:
            assert PROFILER.sim_runs.get("crc") == len(jobs)
            assert PROFILER.sim_seconds["crc"] > 0.0
            # Every job resolved its trace through a worker's cache.
            total = PROFILER.worker_cache_hits + PROFILER.worker_cache_misses
            assert total == len(jobs)
        finally:
            PROFILER.reset()

    def test_profile_off_skips_sim_accounting(self):
        PROFILER.reset()
        jobs = [
            SimJob(workload="crc", config=(1, 0, 0, 0), size="tiny", salt=s)
            for s in range(2)
        ]
        try:
            run_jobs(jobs, dataclasses.replace(QUICK, profile=False),
                     n_workers=1)
            assert PROFILER.total_sim_runs == 0
        finally:
            PROFILER.reset()

    def test_worker_cache_line_in_table(self):
        prof = Profiler()
        prof.record_worker_cache(10, 2)
        assert "worker trace caches: 10 hits / 2 misses" in prof.table()


class TestStallHandling:
    def test_allow_stall_returns_none(self):
        # An impossible supply: restart can never fit in the on-time.
        job = SimJob(
            workload="crc",
            config=(16, 8, 4, 4),
            size="tiny",
            schedule="runt",
            runt_mean=2,
            runt_fraction=1.0,
            max_power_cycles=50,
            allow_stall=True,
        )
        [result] = run_jobs([job], QUICK, n_workers=1)
        assert result is None

    def test_stall_raises_without_flag(self):
        from repro.common.errors import SimulationError

        job = SimJob(
            workload="crc",
            config=(16, 8, 4, 4),
            size="tiny",
            schedule="runt",
            runt_mean=2,
            runt_fraction=1.0,
            max_power_cycles=50,
        )
        with pytest.raises(SimulationError):
            run_jobs([job], QUICK, n_workers=1)
