"""Unit tests for power schedules."""

import pytest

from repro.common.errors import ConfigError
from repro.power.schedules import (
    ContinuousPower,
    ExponentialPower,
    FixedPower,
    ReplayPower,
    RuntPower,
    UniformPower,
    default_power_schedule,
)


class TestFixedPower:
    def test_constant(self):
        sched = FixedPower(100)
        assert [sched.next_on_time() for _ in range(3)] == [100, 100, 100]
        assert sched.mean_on_time == 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            FixedPower(0)


class TestContinuousPower:
    def test_effectively_infinite(self):
        sched = ContinuousPower()
        assert sched.next_on_time() > 10**15


class TestExponentialPower:
    def test_deterministic_per_seed(self):
        a = ExponentialPower(1000, seed=7)
        b = ExponentialPower(1000, seed=7)
        assert [a.next_on_time() for _ in range(20)] == [
            b.next_on_time() for _ in range(20)
        ]

    def test_reset_rewinds(self):
        sched = ExponentialPower(1000, seed=3)
        first = [sched.next_on_time() for _ in range(10)]
        sched.reset()
        assert [sched.next_on_time() for _ in range(10)] == first

    def test_mean_approximately_right(self):
        sched = ExponentialPower(5000, seed=1)
        samples = [sched.next_on_time() for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(5000, rel=0.1)

    def test_minimum_enforced(self):
        sched = ExponentialPower(2, seed=0, min_cycles=1)
        assert all(sched.next_on_time() >= 1 for _ in range(200))

    def test_rejects_bad_mean(self):
        with pytest.raises(ConfigError):
            ExponentialPower(0)


class TestUniformPower:
    def test_bounds(self):
        sched = UniformPower(10, 20, seed=2)
        samples = [sched.next_on_time() for _ in range(200)]
        assert all(10 <= s <= 20 for s in samples)
        assert sched.mean_on_time == 15.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigError):
            UniformPower(20, 10)


class TestReplayPower:
    def test_replays_then_repeats_last(self):
        sched = ReplayPower([5, 6, 7])
        assert [sched.next_on_time() for _ in range(5)] == [5, 6, 7, 7, 7]
        sched.reset()
        assert sched.next_on_time() == 5
        assert sched.mean_on_time == 6.0

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ConfigError):
            ReplayPower([])
        with pytest.raises(ConfigError):
            ReplayPower([1, 0])


class TestRuntPower:
    def test_mixture_mean(self):
        sched = RuntPower(10000, 100, runt_fraction=0.5, seed=1)
        assert sched.mean_on_time == pytest.approx(5050.0)

    def test_produces_runts(self):
        sched = RuntPower(10000, 50, runt_fraction=0.9, seed=1)
        samples = [sched.next_on_time() for _ in range(300)]
        assert sum(1 for s in samples if s < 200) > 150

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            RuntPower(100, 10, runt_fraction=1.5)


class TestDefault:
    def test_default_is_100ms_exponential(self):
        sched = default_power_schedule(seed=0)
        assert isinstance(sched, ExponentialPower)
        assert sched.mean_on_time == 100_000  # 100 ms at the scaled 1 MHz
