"""Unit tests for the two watchdog timers (Section 3.1.4)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.watchdogs import (
    PerformanceWatchdog,
    ProgressWatchdog,
    optimal_watchdog_value,
)


class TestPerformanceWatchdog:
    def test_disabled_never_fires(self):
        wdt = PerformanceWatchdog(0)
        assert not wdt.enabled
        assert not wdt.advance(10**9)

    def test_fires_after_load_cycles(self):
        wdt = PerformanceWatchdog(100)
        assert not wdt.advance(99)
        assert wdt.advance(1)

    def test_reload_restarts_countdown(self):
        wdt = PerformanceWatchdog(100)
        wdt.advance(90)
        wdt.reload()
        assert not wdt.advance(99)
        assert wdt.advance(1)

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigError):
            PerformanceWatchdog(-1)


class TestProgressWatchdog:
    def test_unconfigured_is_inert(self):
        wdt = ProgressWatchdog(0)
        wdt.on_restart()
        assert not wdt.enabled
        assert not wdt.advance(10**9)

    def test_stays_disabled_after_productive_cycle(self):
        # Paper: variable==0 -> set to 1, leave disabled.
        wdt = ProgressWatchdog(1000)
        wdt.on_restart()
        assert not wdt.enabled

    def test_enables_with_default_after_barren_cycle(self):
        wdt = ProgressWatchdog(1000)
        wdt.on_restart()  # productive-looking first cycle: arms the flag
        wdt.on_restart()  # no checkpoint happened: enable with default
        assert wdt.enabled
        assert wdt.nv_load_value == 1000

    def test_halves_across_repeated_barren_cycles(self):
        wdt = ProgressWatchdog(1000)
        wdt.on_restart()
        wdt.on_restart()
        wdt.on_restart()
        assert wdt.nv_load_value == 500
        wdt.on_restart()
        assert wdt.nv_load_value == 250

    def test_halving_floors_at_one(self):
        wdt = ProgressWatchdog(2)
        for _ in range(10):
            wdt.on_restart()
        assert wdt.nv_load_value == 1

    def test_checkpoint_disables_and_clears(self):
        wdt = ProgressWatchdog(1000)
        wdt.on_restart()
        wdt.on_restart()
        assert wdt.enabled
        wdt.on_checkpoint()
        assert not wdt.enabled
        assert wdt.nv_load_value == 0
        assert not wdt.nv_no_checkpoint
        # Next restart: back to the disabled state.
        wdt.on_restart()
        assert not wdt.enabled

    def test_fires_when_enabled(self):
        wdt = ProgressWatchdog(100)
        wdt.on_restart()
        wdt.on_restart()
        assert not wdt.advance(99)
        assert wdt.advance(1)

    def test_rejects_negative_default(self):
        with pytest.raises(ConfigError):
            ProgressWatchdog(-5)


class TestOptimalWatchdogValue:
    def test_matches_closed_form(self):
        # P* = sqrt(2 C T): checkpoint and re-execution overhead balance.
        assert optimal_watchdog_value(100_000, 40) == pytest.approx(2828, abs=1)

    def test_scales_with_sqrt(self):
        p1 = optimal_watchdog_value(10_000, 40)
        p2 = optimal_watchdog_value(40_000, 40)
        assert p2 == pytest.approx(2 * p1, rel=0.01)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            optimal_watchdog_value(0, 40)
        with pytest.raises(ConfigError):
            optimal_watchdog_value(100, 0)

    def test_balance_property(self):
        # At P*, C/P == P/(2T) (within rounding).
        T, C = 200_000, 60
        p = optimal_watchdog_value(T, C)
        assert C / p == pytest.approx(p / (2 * T), rel=0.01)
