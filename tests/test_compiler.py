"""Unit tests for the compiler component."""

import pytest

from repro.compiler.codesize import code_size_increase
from repro.compiler.program_idempotence import (
    ignorable_access_count,
    profile_program_idempotent,
)
from repro.core.config import ClankConfig
from repro.trace.access import READ, WRITE, Access
from repro.trace.trace import Trace

from tests.conftest import DATA_WORD, make_trace, rmw_trace, stream_trace


class TestProgramIdempotence:
    def test_read_only_addresses_qualify(self):
        trace = make_trace([(READ, 0), (READ, 0), (READ, 1)])
        pi = profile_program_idempotent(trace)
        assert DATA_WORD in pi and DATA_WORD + 1 in pi

    def test_write_then_reads_qualifies(self):
        # W*->R* (Section 4.3): initial writes followed by only reads.
        trace = make_trace([(WRITE, 0, 5), (WRITE, 0, 6), (READ, 0), (READ, 0)])
        assert DATA_WORD in profile_program_idempotent(trace)

    def test_write_after_read_disqualifies(self):
        trace = make_trace([(READ, 0), (WRITE, 0, 5)])
        assert DATA_WORD not in profile_program_idempotent(trace)

    def test_disqualification_is_whole_program(self):
        # Even if the write-after-read happens late, every access to the
        # address is unmarkable (re-execution could cross it).
        trace = make_trace([(WRITE, 0, 1), (READ, 0), (WRITE, 0, 2)])
        assert DATA_WORD not in profile_program_idempotent(trace)

    def test_outputs_never_marked(self):
        mmio = 0x4000_0000 >> 2
        trace = Trace(
            "o", [Access(WRITE, mmio, 1, 4)], initial_image={mmio: 0}
        )
        assert mmio not in profile_program_idempotent(trace)

    def test_stream_trace_fully_markable(self):
        trace = stream_trace(40)
        pi = profile_program_idempotent(trace)
        non_output = {
            a.waddr for a in trace.accesses
            if not trace.memory_map.is_output(a.waddr << 2)
        }
        assert non_output <= pi

    def test_rmw_trace_unmarkable(self):
        trace = rmw_trace(60, addrs=4)
        pi = profile_program_idempotent(trace)
        assert ignorable_access_count(trace, pi) == 0

    def test_ignorable_count(self):
        trace = make_trace([(READ, 0), (READ, 0), (READ, 1), (WRITE, 1, 2)])
        pi = profile_program_idempotent(trace)
        assert ignorable_access_count(trace, pi) == 2  # the two reads of 0


class TestCodeSize:
    def test_small_constant_addition(self):
        cfg = ClankConfig.from_tuple((16, 8, 4, 4))
        report = code_size_increase(100_000, cfg)
        # Clank adds a small constant: large binaries see tiny increases
        # (Table 1: 0.00%-0.39% for the big benchmarks).
        assert report.increase < 0.01
        assert report.total_bytes == 100_000 + report.added_bytes

    def test_tiny_binaries_see_large_relative_increase(self):
        cfg = ClankConfig.from_tuple((16, 8, 4, 4))
        report = code_size_increase(800, cfg)
        assert report.increase > 0.10  # like randmath's 28.84%

    def test_wbb_scratchpad_scales(self):
        small = code_size_increase(1000, ClankConfig.from_tuple((16, 8, 0, 0)))
        big = code_size_increase(1000, ClankConfig.from_tuple((16, 8, 8, 0)))
        assert big.added_bytes == small.added_bytes + 8 * 8

    def test_watchdogs_add_bytes(self):
        cfg = ClankConfig.from_tuple((1, 0, 0, 0))
        with_wdt = code_size_increase(1000, cfg, watchdogs=True)
        without = code_size_increase(1000, cfg, watchdogs=False)
        assert with_wdt.added_bytes > without.added_bytes
