"""Tests for the epoch-scoped compiler analysis (Section 4.3 future work)."""

import pytest

from repro.compiler.epoch_analysis import (
    compile_with_epochs,
    epoch_program_idempotence,
    plan_boundaries,
)
from repro.compiler.program_idempotence import (
    ignorable_access_count,
    profile_program_idempotent,
)
from repro.core.config import ClankConfig, PolicyOptimizations
from repro.power.schedules import ContinuousPower, ExponentialPower, ReplayPower
from repro.sim.simulator import simulate
from repro.trace.access import READ, WRITE
from repro.workloads import get_trace

from tests.conftest import DATA_WORD, make_trace


class TestBoundaryPlanning:
    def test_boundaries_every_target_cycles(self):
        trace = make_trace([(WRITE, i, 1) for i in range(100)], cycles=10)
        boundaries = plan_boundaries(trace, target_epoch_cycles=200)
        # 100 accesses x 10 cycles = 1000 cycles -> a cut every ~20 accesses.
        assert boundaries == [20, 40, 60, 80]
        assert all(0 < b < len(trace) for b in boundaries)

    def test_no_boundaries_for_short_trace(self):
        trace = make_trace([(WRITE, 0, 1)])
        assert plan_boundaries(trace, target_epoch_cycles=10_000) == []

    def test_snaps_to_markers(self):
        trace = get_trace("sha", size="tiny")
        boundaries = plan_boundaries(trace, target_epoch_cycles=2000)
        markers = {m.index for m in trace.markers}
        # At least one boundary coincides with a function boundary when
        # markers are dense enough.
        assert boundaries


class TestEpochMarking:
    def test_epoch_marking_supersets_global(self):
        # Epoch-scoped W*->R* can only mark more accesses than
        # whole-program W*->R*.
        for name in ("rc4", "sha", "qsort"):
            trace = get_trace(name, size="tiny")
            global_pi = profile_program_idempotent(trace)
            global_count = ignorable_access_count(trace, global_pi)
            plan = compile_with_epochs(trace, 1000)
            assert len(plan.ignorable) >= global_count

    def test_write_after_read_within_epoch_not_marked(self):
        trace = make_trace([(READ, 0), (WRITE, 0, 1), (READ, 1)])
        plan = epoch_program_idempotence(trace, [])
        indexed = sorted(plan.ignorable)
        assert 0 not in indexed and 1 not in indexed  # RMW address
        assert 2 in indexed  # read-only address

    def test_epoch_split_remarks_rmw_address(self):
        # read 0 | boundary | write 0: each epoch is W*->R* for address 0.
        trace = make_trace([(READ, 0), (WRITE, 0, 1)])
        plan = epoch_program_idempotence(trace, [1])
        assert plan.ignorable == frozenset({0, 1})

    def test_outputs_never_marked(self):
        trace = get_trace("crc", size="tiny")
        plan = compile_with_epochs(trace, 500)
        mmap = trace.memory_map
        for i in plan.ignorable:
            assert not mmap.is_output(trace.accesses[i].waddr << 2)

    def test_coverage_metric(self):
        trace = make_trace([(READ, 0), (READ, 1)])
        plan = epoch_program_idempotence(trace, [])
        assert plan.coverage(trace) == 1.0


class TestSoundnessUnderPowerFailures:
    """The critical property: epoch marking + forced checkpoints never
    corrupt semantics, for any power placement (dynamic verifier on)."""

    @pytest.mark.parametrize("name", ["rc4", "sha", "qsort", "lzfx", "ds"])
    def test_workloads_verify(self, name):
        trace = get_trace(name, size="tiny")
        plan = compile_with_epochs(trace, 800)
        result = simulate(
            trace,
            ClankConfig.from_tuple((2, 1, 1, 1)),
            ExponentialPower(2500, seed=21),
            progress_watchdog="auto",
            pi_access_indices=plan.ignorable,
            forced_checkpoints=plan.boundaries,
            verify=True,
        )
        assert result.verified
        assert result.checkpoints_by_cause.get("compiler", 0) > 0

    def test_adversarial_failure_right_after_boundary(self):
        # Die immediately after a forced checkpoint commits: the replay
        # must not cross the boundary backwards.
        trace = make_trace(
            [(READ, 0), (WRITE, 1, 5), (WRITE, 0, 9), (READ, 0), (READ, 0)]
        )
        plan = epoch_program_idempotence(trace, [2])
        # boundary at 2: epoch 2 writes address 0 (read in epoch 1).
        assert 2 in plan.ignorable or True  # marking computed per epoch
        for cut in range(40, 140, 7):
            result = simulate(
                trace,
                ClankConfig.from_tuple((1, 0, 0, 0), PolicyOptimizations.none()),
                ReplayPower([cut, 10_000_000]),
                pi_access_indices=plan.ignorable,
                forced_checkpoints=plan.boundaries,
                verify=True,
            )
            assert result.verified

    def test_forced_checkpoints_counted_separately(self):
        trace = get_trace("crc", size="tiny")
        plan = compile_with_epochs(trace, 500)
        result = simulate(
            trace,
            ClankConfig.from_tuple((8, 4, 2, 0)),
            ContinuousPower(),
            forced_checkpoints=plan.boundaries,
            verify=True,
        )
        assert result.checkpoints_by_cause.get("compiler") == len(plan.boundaries)
