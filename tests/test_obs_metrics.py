"""Unit tests for the metrics registry (counters + fixed-bucket histograms)."""

import json

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bounds(self):
        h = Histogram((1, 2, 4))
        for v in (0, 1, 2, 3, 4, 5):
            h.observe(v)
        # <=1: {0,1}; <=2: {2}; <=4: {3,4}; overflow: {5}
        assert h.counts == [2, 1, 2, 1]
        assert h.count == 6
        assert h.total == 15
        assert h.mean == pytest.approx(2.5)
        assert h.min == 0 and h.max == 5

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((4, 2))
        with pytest.raises(ValueError):
            Histogram((1, 1, 2))

    def test_empty_histogram_mean(self):
        h = Histogram((1,))
        assert h.mean == 0.0
        assert h.min is None and h.max is None

    def test_to_dict_is_json_serializable(self):
        h = Histogram((1, 10))
        h.observe(3)
        d = h.to_dict()
        json.dumps(d)
        assert d["counts"] == [0, 1, 0]
        assert d["count"] == 1


class TestMetricsRegistry:
    def test_get_or_create_semantics(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", (1, 2)) is reg.histogram("h", (1, 2))

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("ckpt").inc(3)
        reg.histogram("len", (2, 8)).observe(5)
        d = reg.to_dict()
        assert d["counters"] == {"ckpt": 3}
        assert d["histograms"]["len"]["counts"] == [0, 1, 0]
        json.dumps(d)
