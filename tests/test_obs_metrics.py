"""Unit tests for the metrics registry (counters + fixed-bucket histograms)
and the serving-side labeled families + Prometheus rendering."""

import json
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    ServingMetrics,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bounds(self):
        h = Histogram((1, 2, 4))
        for v in (0, 1, 2, 3, 4, 5):
            h.observe(v)
        # <=1: {0,1}; <=2: {2}; <=4: {3,4}; overflow: {5}
        assert h.counts == [2, 1, 2, 1]
        assert h.count == 6
        assert h.total == 15
        assert h.mean == pytest.approx(2.5)
        assert h.min == 0 and h.max == 5

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((4, 2))
        with pytest.raises(ValueError):
            Histogram((1, 1, 2))

    def test_empty_histogram_mean(self):
        h = Histogram((1,))
        assert h.mean == 0.0
        assert h.min is None and h.max is None

    def test_to_dict_is_json_serializable(self):
        h = Histogram((1, 10))
        h.observe(3)
        d = h.to_dict()
        json.dumps(d)
        assert d["counts"] == [0, 1, 0]
        assert d["count"] == 1

    def test_percentile_unit_bounds_exact(self):
        """Integer data binned with unit bounds: the bucket bound IS the
        exact percentile (the analyze.py p50/p95 contract)."""
        h = Histogram(range(10))
        for v in range(10):  # one observation per value 0..9
            h.observe(v)
        assert h.percentile(0.50) == 4
        assert h.percentile(0.95) == 9
        assert h.percentile(0.0) == 0
        assert h.percentile(1.0) == 9

    def test_percentile_overflow_bin_reports_max(self):
        h = Histogram((1, 2))
        for v in (1, 50, 60):
            h.observe(v)
        assert h.percentile(0.95) == 60
        # Rebuilt from counts without a tracked max: inf, not a lie.
        h2 = Histogram((1, 2))
        h2.counts = [0, 0, 3]
        h2.count = 3
        assert h2.percentile(0.95) == float("inf")

    def test_percentile_empty_and_bad_quantile(self):
        h = Histogram((1,))
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_percentile_skips_empty_buckets(self):
        h = Histogram((1, 2, 3, 4))
        h.observe(1)
        h.observe(4)
        assert h.percentile(0.5) == 1
        assert h.percentile(0.9) == 4


class TestMetricsRegistry:
    def test_get_or_create_semantics(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", (1, 2)) is reg.histogram("h", (1, 2))

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("ckpt").inc(3)
        reg.histogram("len", (2, 8)).observe(5)
        d = reg.to_dict()
        assert d["counters"] == {"ckpt": 3}
        assert d["histograms"]["len"]["counts"] == [0, 1, 0]
        json.dumps(d)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6


class TestFamilies:
    def test_counter_family_labels(self):
        fam = CounterFamily("http_requests_total", "requests")
        fam.inc(endpoint="/jobs", status="200")
        fam.inc(3, endpoint="/jobs", status="200")
        fam.inc(endpoint="/stats", status="200")
        assert fam.get(endpoint="/jobs", status="200") == 4
        assert fam.get(status="200", endpoint="/jobs") == 4  # order-free
        assert len(fam.items()) == 2

    def test_histogram_family_total_count(self):
        fam = HistogramFamily("resolve_seconds", "", bounds=(0.1, 1.0))
        fam.observe(0.05, tier="memory")
        fam.observe(0.5, tier="computed")
        fam.observe(2.0, tier="computed")
        assert fam.total_count() == 3
        assert fam.get(tier="computed").count == 2

    def test_serving_metrics_get_or_create_and_type_clash(self):
        m = ServingMetrics()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h") is m.histogram("h")
        with pytest.raises(TypeError, match="already registered"):
            m.gauge("a")
        assert [f.name for f in m.families()] == ["a", "h"]

    def test_concurrent_increments_never_lost(self):
        """The family lock covers mutation: hammering one labeled child
        from many threads must sum exactly (``+=`` alone would not)."""
        fam = CounterFamily("hammer", "")
        hist = HistogramFamily("hammer_h", "", bounds=(0.5,))
        n_threads, n_ops = 8, 2000

        def bump():
            for _ in range(n_ops):
                fam.inc(endpoint="/jobs")
                hist.observe(0.1, tier="memory")

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert fam.get(endpoint="/jobs") == n_threads * n_ops
        assert hist.total_count() == n_threads * n_ops


class TestRenderPrometheus:
    def _parse(self, text):
        """Parse exposition text to {series{labels}: value}."""
        out = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            out[name] = float(value)
        return out

    def test_counter_and_gauge_series(self):
        m = ServingMetrics()
        m.counter("reqs", "total requests").inc(7, endpoint="/jobs")
        m.gauge("inflight").set(2, kind="jobs")
        text = m.render()
        assert "# HELP reqs total requests" in text
        assert "# TYPE reqs counter" in text
        assert "# TYPE inflight gauge" in text
        series = self._parse(text)
        assert series['reqs{endpoint="/jobs"}'] == 7
        assert series['inflight{kind="jobs"}'] == 2

    def test_histogram_buckets_cumulative_and_reconcile(self):
        fam = HistogramFamily("lat", "latency", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            fam.observe(v, tier="computed")
        series = self._parse(render_prometheus([fam]))
        assert series['lat_bucket{tier="computed",le="0.1"}'] == 1
        assert series['lat_bucket{tier="computed",le="1"}'] == 3
        # +Inf bucket equals _count equals total observations.
        assert series['lat_bucket{tier="computed",le="+Inf"}'] == 4
        assert series['lat_count{tier="computed"}'] == 4
        assert series['lat_sum{tier="computed"}'] == pytest.approx(6.25)

    def test_extra_counters_and_label_escaping(self):
        m = ServingMetrics()
        m.counter("c").inc(1, path='a"b\\c')
        text = m.render(extra_counters={"cache_hits": 12})
        assert "cache_hits 12" in text
        assert '\\"' in text and "\\\\" in text
        assert text.endswith("\n")
