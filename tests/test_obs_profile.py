"""Sweep profiling: the Profiler, runner integration, trace-cache stats."""

from repro.core.config import ClankConfig
from repro.eval.runner import run_clank
from repro.eval.settings import EvalSettings
from repro.obs.profile import PROFILER, Profiler
from repro.workloads.cache import (
    cache_stats,
    clear_trace_cache,
    get_trace,
    reset_cache_stats,
)


class TestProfiler:
    def test_phase_accumulates(self):
        p = Profiler()
        with p.phase("fig5"):
            pass
        with p.phase("fig5"):
            pass
        assert p.phase_calls["fig5"] == 2
        assert p.phases["fig5"] >= 0.0

    def test_phase_records_on_exception(self):
        p = Profiler()
        try:
            with p.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in p.phases

    def test_record_sim_totals(self):
        p = Profiler()
        p.record_sim("crc", 0.5)
        p.record_sim("crc", 0.25)
        p.record_sim("fft", 1.0)
        assert p.total_sim_runs == 3
        assert p.total_sim_seconds == 1.75

    def test_table_renders_all_sections(self):
        p = Profiler()
        with p.phase("fig5"):
            pass
        p.record_sim("crc", 0.5)
        text = p.table(cache_stats={"hits": 3, "misses": 1})
        assert "experiment drivers" in text
        assert "fig5" in text
        assert "crc" in text
        assert "75.0% hit rate" in text

    def test_table_empty_profiler(self):
        assert Profiler().table() == "run profile"

    def test_reset(self):
        p = Profiler()
        p.record_sim("crc", 1.0)
        with p.phase("x"):
            pass
        p.reset()
        assert not p.phases and not p.sim_seconds


class TestRunnerIntegration:
    def test_run_clank_records_sim_time(self):
        PROFILER.reset()
        settings = EvalSettings(size="tiny")
        trace = get_trace("crc", size="tiny")
        run_clank(trace, ClankConfig.from_tuple((4, 2, 2, 0)), settings)
        assert PROFILER.sim_runs.get("crc") == 1
        assert PROFILER.sim_seconds["crc"] > 0.0

    def test_profile_off_records_nothing(self):
        PROFILER.reset()
        settings = EvalSettings(size="tiny", profile=False)
        trace = get_trace("crc", size="tiny")
        run_clank(trace, ClankConfig.from_tuple((4, 2, 2, 0)), settings)
        assert PROFILER.sim_runs == {}


class TestCacheStats:
    def test_hit_miss_accounting(self):
        clear_trace_cache()
        reset_cache_stats()
        get_trace("crc", size="tiny")
        get_trace("crc", size="tiny")
        stats = cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_clear_cache_forces_miss(self):
        clear_trace_cache()
        reset_cache_stats()
        get_trace("crc", size="tiny")
        clear_trace_cache()
        get_trace("crc", size="tiny")
        assert cache_stats()["misses"] == 2
