"""Unit tests for SimulationResult accounting and experiment settings."""

import json

import pytest

from repro.eval.runner import average, benchmark_traces, pi_words_for
from repro.eval.settings import EvalSettings
from repro.sim.result import SimulationResult
from repro.workloads.cache import get_trace


def make_result(**kw):
    base = dict(
        name="w",
        config_label="1,0,0,0",
        baseline_cycles=1000,
        useful_cycles=1000,
        checkpoint_cycles=100,
        restart_cycles=50,
        reexec_cycles=200,
        wasted_cycles=25,
        checkpoints_by_cause={"violation": 3, "final": 1},
        power_cycles=4,
    )
    base.update(kw)
    return SimulationResult(**base)


class TestSimulationResult:
    def make(self, **kw):
        return make_result(**kw)

    def test_total_cycles_is_sum_of_buckets(self):
        res = self.make()
        assert res.total_cycles == 1000 + 100 + 50 + 200 + 25

    def test_overhead_fractions(self):
        res = self.make()
        assert res.checkpoint_overhead == pytest.approx(0.1)
        assert res.reexec_overhead == pytest.approx(0.225)
        assert res.restart_overhead == pytest.approx(0.05)
        assert res.run_time_overhead == pytest.approx(0.375)

    def test_total_overhead_includes_hardware(self):
        res = self.make()
        assert res.total_overhead(0.02) == pytest.approx(1.395)

    def test_num_checkpoints(self):
        assert self.make().num_checkpoints == 4

    def test_avg_section_cycles(self):
        res = self.make()
        assert res.avg_section_cycles == pytest.approx(res.total_cycles / 4)

    def test_summary_is_one_line(self):
        assert "\n" not in self.make().summary()


class TestSimulationResultSerialization:
    make = staticmethod(make_result)

    def test_dict_round_trip(self):
        res = self.make(
            metrics={"counters": {"checkpoints_committed": 4}, "histograms": {}}
        )
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone == res

    def test_round_trip_does_not_alias_mutables(self):
        res = self.make()
        clone = SimulationResult.from_dict(res.to_dict())
        clone.checkpoints_by_cause["violation"] = 999
        assert res.checkpoints_by_cause["violation"] == 3

    def test_to_dict_derived_block(self):
        res = self.make()
        d = res.to_dict()
        assert d["derived"]["run_time_overhead"] == pytest.approx(0.375)
        assert d["derived"]["num_checkpoints"] == 4
        assert "derived" not in res.to_dict(include_derived=False)

    def test_from_dict_ignores_unknown_keys(self):
        d = self.make().to_dict()
        d["from_the_future"] = 1
        assert SimulationResult.from_dict(d) == self.make()

    def test_to_json_loads_back(self):
        res = self.make()
        loaded = json.loads(res.to_json(indent=2))
        assert loaded["name"] == "w"
        assert SimulationResult.from_dict(loaded) == res


class TestSimulationResultEdgeCases:
    make = staticmethod(make_result)

    def test_zero_committed_checkpoints(self):
        res = self.make(checkpoints_by_cause={}, checkpoint_cycles=0)
        assert res.num_checkpoints == 0
        assert res.checkpoint_overhead == 0.0
        # avg_section_cycles degrades to the whole run, not a ZeroDivision.
        assert res.avg_section_cycles == res.total_cycles
        assert SimulationResult.from_dict(res.to_dict()) == res

    def test_incomplete_run(self):
        res = self.make(completed=False, useful_cycles=400)
        assert not res.completed
        assert res.total_cycles == 400 + 100 + 50 + 200 + 25
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone.completed is False

    def test_total_overhead_with_hardware_fraction(self):
        res = self.make()
        assert res.total_overhead(0.0) == pytest.approx(1.375)
        # hardware power adds linearly on top of software overhead
        assert res.total_overhead(0.13) == pytest.approx(1.505)
        assert res.total_overhead(0.13) > res.total_overhead()

    def test_default_metrics_empty(self):
        assert self.make().metrics == {}


class TestEvalSettings:
    def test_default_is_100ms(self):
        s = EvalSettings()
        assert s.avg_on_cycles == 100_000

    def test_schedule_salting_changes_stream(self):
        s = EvalSettings(seed=2)
        a = s.schedule(0)
        b = s.schedule(1)
        assert [a.next_on_time() for _ in range(5)] != [
            b.next_on_time() for _ in range(5)
        ]

    def test_schedule_reproducible(self):
        s = EvalSettings(seed=2)
        a = s.schedule(3)
        b = s.schedule(3)
        assert [a.next_on_time() for _ in range(5)] == [
            b.next_on_time() for _ in range(5)
        ]

    def test_quick_shrinks_sizes(self):
        q = EvalSettings().quick()
        assert q.size == "small"
        assert q.sweep_size == "tiny"


class TestRunnerHelpers:
    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0

    def test_benchmark_traces_returns_23(self):
        s = EvalSettings(size="tiny")
        traces = benchmark_traces(s)
        assert len(traces) == 23
        names = [n for n, _ in traces]
        assert names[0] == "adpcm_decode"

    def test_pi_cache_stable(self):
        trace = get_trace("crc", size="tiny")
        assert pi_words_for(trace) is pi_words_for(trace)
