"""Unit tests for SimulationResult accounting and experiment settings."""

import pytest

from repro.eval.runner import average, benchmark_traces, pi_words_for
from repro.eval.settings import EvalSettings
from repro.sim.result import SimulationResult
from repro.workloads.cache import get_trace


class TestSimulationResult:
    def make(self, **kw):
        base = dict(
            name="w",
            config_label="1,0,0,0",
            baseline_cycles=1000,
            useful_cycles=1000,
            checkpoint_cycles=100,
            restart_cycles=50,
            reexec_cycles=200,
            wasted_cycles=25,
            checkpoints_by_cause={"violation": 3, "final": 1},
            power_cycles=4,
        )
        base.update(kw)
        return SimulationResult(**base)

    def test_total_cycles_is_sum_of_buckets(self):
        res = self.make()
        assert res.total_cycles == 1000 + 100 + 50 + 200 + 25

    def test_overhead_fractions(self):
        res = self.make()
        assert res.checkpoint_overhead == pytest.approx(0.1)
        assert res.reexec_overhead == pytest.approx(0.225)
        assert res.restart_overhead == pytest.approx(0.05)
        assert res.run_time_overhead == pytest.approx(0.375)

    def test_total_overhead_includes_hardware(self):
        res = self.make()
        assert res.total_overhead(0.02) == pytest.approx(1.395)

    def test_num_checkpoints(self):
        assert self.make().num_checkpoints == 4

    def test_avg_section_cycles(self):
        res = self.make()
        assert res.avg_section_cycles == pytest.approx(res.total_cycles / 4)

    def test_summary_is_one_line(self):
        assert "\n" not in self.make().summary()


class TestEvalSettings:
    def test_default_is_100ms(self):
        s = EvalSettings()
        assert s.avg_on_cycles == 100_000

    def test_schedule_salting_changes_stream(self):
        s = EvalSettings(seed=2)
        a = s.schedule(0)
        b = s.schedule(1)
        assert [a.next_on_time() for _ in range(5)] != [
            b.next_on_time() for _ in range(5)
        ]

    def test_schedule_reproducible(self):
        s = EvalSettings(seed=2)
        a = s.schedule(3)
        b = s.schedule(3)
        assert [a.next_on_time() for _ in range(5)] == [
            b.next_on_time() for _ in range(5)
        ]

    def test_quick_shrinks_sizes(self):
        q = EvalSettings().quick()
        assert q.size == "small"
        assert q.sweep_size == "tiny"


class TestRunnerHelpers:
    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0

    def test_benchmark_traces_returns_23(self):
        s = EvalSettings(size="tiny")
        traces = benchmark_traces(s)
        assert len(traces) == 23
        names = [n for n, _ in traces]
        assert names[0] == "adpcm_decode"

    def test_pi_cache_stable(self):
        trace = get_trace("crc", size="tiny")
        assert pi_words_for(trace) is pi_words_for(trace)
