"""Architectural introspection (:mod:`repro.obs.analyze`).

The load-bearing contract: the statistics are computed two entirely
different ways — the reference simulator snapshots the live detector at
each commit, the fast path derives them from memoized per-section growth
steps — and the two must reconcile *exactly*, with cause totals equal to
each run's ``checkpoints_by_cause``.  The collector must be off by
default, deterministic at any worker count, and bounded in memory.
"""

import json

import pytest

from repro.core import cext
from repro.core.config import ClankConfig, PolicyOptimizations
from repro.eval.parallel import SimJob, execute_job, run_jobs
from repro.eval.runner import pi_words_for
from repro.eval.settings import EvalSettings
from repro.obs import analyze
from repro.obs.analyze import (
    COLLECTOR,
    HIST_BINS,
    MAX_HAZARDS,
    MAX_SECTIONS,
    ArchAccumulator,
    ArchCollector,
    accumulate_events,
    summary_from_accumulator,
)
from repro.obs.recorder import MemoryRecorder
from repro.power.schedules import ExponentialPower
from repro.sim.fast import simulate_fast
from repro.sim.simulator import IntermittentSimulator
from repro.workloads import get_trace

CONFIGS = [(1, 0, 0, 0), (8, 4, 2, 0), (16, 8, 4, 4)]

#: Slot fields both engines must agree on.  ``occ_peak``/``sections_seen``
#: are deliberately absent: section peaks come from the fast path's
#: enumeration-time scan only (DESIGN decision 11).
ENGINE_INDEPENDENT = (
    "causes", "checkpoint_cycles_by_cause", "commits", "occ_commit",
    "hazards_top", "hazards_dropped", "section_accesses", "section_cycles",
)


@pytest.fixture(autouse=True)
def clean_collector():
    """Every test starts and ends with the shared collector off."""
    COLLECTOR.disable()
    COLLECTOR.reset()
    yield
    COLLECTOR.disable()
    COLLECTOR.reset()


def collected(engine, trace, config, seed=1, on=800, pi=False):
    """(result, one-slot summary) for one run with the collector on."""
    COLLECTOR.reset()
    COLLECTOR.enable()
    kw = dict(verify=False, perf_watchdog="auto", progress_watchdog="auto")
    if pi:
        kw["pi_words"] = pi_words_for(trace)
    try:
        if engine == "reference":
            result = IntermittentSimulator(
                trace, config, ExponentialPower(on, seed), **kw
            ).run()
        else:
            result = simulate_fast(
                trace, config, ExponentialPower(on, seed), **kw
            )
    finally:
        COLLECTOR.disable()
    summary = COLLECTOR.to_summary()
    [(config_label, slot)] = [
        (c, s)
        for configs in summary["workloads"].values()
        for c, s in configs.items()
    ]
    return result, slot


class TestDisabledByDefault:
    def test_module_collector_starts_disabled(self):
        assert not ArchCollector().enabled

    def test_run_accumulator_is_none_when_off(self):
        assert COLLECTOR.run_accumulator() is None
        COLLECTOR.enable()
        assert COLLECTOR.run_accumulator() is not None

    def test_disabled_folds_are_noops(self):
        COLLECTOR.fold_run("crc", "c", ArchAccumulator(), "fast")
        COLLECTOR.fold_causes("crc", "c", {"final": 1}, "undo")
        COLLECTOR.fold_stalled("crc", "c")
        assert COLLECTOR.to_summary()["totals"]["runs"] == 0


class TestEngineReconciliation:
    """Fast-vs-reference equality on the shapes the evaluation sweeps."""

    @pytest.mark.parametrize("name", ["crc", "qsort"])
    @pytest.mark.parametrize("spec", CONFIGS)
    @pytest.mark.parametrize("pi", [False, True])
    def test_grid(self, name, spec, pi):
        trace = get_trace(name, "small")
        config = ClankConfig.from_tuple(spec)
        ref, a = collected("reference", trace, config, pi=pi)
        fast, b = collected("fast", trace, config, pi=pi)
        assert ref.to_dict(include_derived=False) == fast.to_dict(
            include_derived=False
        )
        for field in ENGINE_INDEPENDENT:
            assert a[field] == b[field], field
        assert a["runs_by_engine"] == {"reference": 1}
        assert b["runs_by_engine"] == {"fast": 1}

    @pytest.mark.parametrize("spec", CONFIGS)
    def test_causes_match_result_exactly(self, spec):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple(spec)
        for engine in ("reference", "fast"):
            result, slot = collected(engine, trace, config)
            nonzero = {
                k: v for k, v in result.checkpoints_by_cause.items() if v
            }
            assert slot["causes"] == dict(sorted(nonzero.items()))
            assert slot["commits"] == result.num_checkpoints

    @pytest.mark.parametrize("opts", [
        PolicyOptimizations.none(),
        PolicyOptimizations.all(),
        PolicyOptimizations(latest_checkpoint=True),
    ])
    def test_policy_optimizations(self, opts):
        trace = get_trace("qsort", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0), optimizations=opts)
        _, a = collected("reference", trace, config)
        _, b = collected("fast", trace, config)
        for field in ENGINE_INDEPENDENT:
            assert a[field] == b[field], field

    def test_python_kernel_matches_c(self, monkeypatch):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        _, with_c = collected("fast", trace, config)
        monkeypatch.setenv("REPRO_CEXT", "0")
        cext.reset_for_tests()
        try:
            _, pure = collected("fast", trace, config)
        finally:
            monkeypatch.delenv("REPRO_CEXT")
            cext.reset_for_tests()
        for field in ENGINE_INDEPENDENT + ("occ_peak", "sections_seen"):
            assert with_c[field] == pure[field], field

    def test_hazard_addresses_attributed(self):
        # A 1-entry RF with no other buffers trips constantly; the
        # tripping word address must surface identically in both engines.
        trace = get_trace("qsort", "small")
        config = ClankConfig.from_tuple((1, 0, 0, 0))
        _, a = collected("reference", trace, config)
        _, b = collected("fast", trace, config)
        assert a["hazards_top"], "expected hazard attribution"
        assert a["hazards_top"] == b["hazards_top"]
        for h in a["hazards_top"]:
            assert h["waddr"].startswith("0x")
            assert h["cause"] in analyze.HAZARD_CAUSES


class TestEventSeam:
    def test_recorder_stream_reproduces_direct_fold(self):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        _, direct = collected("reference", trace, config)
        rec = MemoryRecorder()
        IntermittentSimulator(
            trace, config, ExponentialPower(800, 1), verify=False,
            perf_watchdog="auto", progress_watchdog="auto", recorder=rec,
        ).run()
        acc = accumulate_events(rec.events)
        summary = summary_from_accumulator(acc, "crc", config.label())
        [slot] = [
            s
            for configs in summary["workloads"].values()
            for s in configs.values()
        ]
        for field in ENGINE_INDEPENDENT:
            assert slot[field] == direct[field], field


class TestParallelDeterminism:
    def jobs(self):
        return [
            SimJob(workload=w, config=c, size="tiny", salt=s)
            for w in ("crc", "qsort")
            for c in ((1, 0, 0, 0), (8, 4, 2, 0))
            for s in (0, 1)
        ]

    def sweep(self, n_workers):
        settings = EvalSettings(size="small", sweep_size="tiny", seed=2,
                                profile=False)
        COLLECTOR.reset()
        COLLECTOR.enable()
        try:
            results = run_jobs(self.jobs(), settings, n_workers=n_workers)
        finally:
            COLLECTOR.disable()
        return results, COLLECTOR.to_summary()

    def test_identical_at_any_worker_count(self):
        serial_results, serial = self.sweep(1)
        pooled_results, pooled = self.sweep(2)
        assert serial == pooled
        assert serial["totals"]["runs"] == len(self.jobs())

    def test_cause_totals_match_summed_results(self):
        results, summary = self.sweep(2)
        expected = {}
        for result in results:
            for cause, n in result.checkpoints_by_cause.items():
                if n:
                    expected[cause] = expected.get(cause, 0) + n
        assert summary["totals"]["causes"] == dict(sorted(expected.items()))

    def test_undo_engine_folds_cause_totals(self):
        settings = EvalSettings(size="small", sweep_size="tiny", seed=2,
                                profile=False)
        job = SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny",
                     engine="undo", log_entries=8)
        COLLECTOR.reset()
        COLLECTOR.enable()
        try:
            result, _ = execute_job(job, settings)
        finally:
            COLLECTOR.disable()
        totals = COLLECTOR.cause_totals()
        nonzero = {k: v for k, v in result.checkpoints_by_cause.items() if v}
        assert totals == nonzero
        assert COLLECTOR.run_totals() == {"undo": 1}

    def test_disk_cached_results_fold_cause_totals(self, tmp_path,
                                                   monkeypatch):
        import repro.cache as artifact_cache
        from repro.sim.sections import clear_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.reset_for_tests()
        clear_cache()
        try:
            settings = EvalSettings(size="small", sweep_size="tiny", seed=2,
                                    profile=False)
            job = SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny")
            cold, _ = execute_job(job, settings)
            artifact_cache.persist_caches()
            COLLECTOR.reset()
            COLLECTOR.enable()
            try:
                warm, _ = execute_job(job, settings)
            finally:
                COLLECTOR.disable()
            assert warm.to_dict() == cold.to_dict()
            assert COLLECTOR.run_totals() == {"disk-cached-result": 1}
            nonzero = {
                k: v for k, v in warm.checkpoints_by_cause.items() if v
            }
            assert COLLECTOR.cause_totals() == nonzero
        finally:
            artifact_cache.reset_for_tests()
            clear_cache()


class TestBoundedMemory:
    def test_histogram_overflow_bin(self):
        acc = ArchAccumulator()
        acc.record_commit("violation", (200, 0, 0, 0), None, 1, 1, 1)
        assert acc.occ_commit["rf"][HIST_BINS - 1] == 1
        stats = analyze._hist_stats(acc.occ_commit["rf"])
        assert stats["max"] == f"{HIST_BINS - 1}+"

    def test_hazard_table_caps_with_dropped_counter(self):
        acc = ArchAccumulator()
        for waddr in range(MAX_HAZARDS + 10):
            acc.record_commit("rf_full", (0, 0, 0, 0), waddr, 1, 1, 1)
        assert len(acc.hazards) == MAX_HAZARDS
        assert acc.hazards_dropped == 10
        # Existing keys still count after the cap.
        acc.record_commit("rf_full", (0, 0, 0, 0), 0, 1, 1, 1)
        assert acc.hazards[(0, "rf_full")] == 2

    def test_section_table_caps_with_dropped_counter(self):
        acc = ArchAccumulator()
        for key in range(MAX_SECTIONS + 5):
            acc.record_section(key, (1, 0, 0, 0))
        assert len(acc.sections) == MAX_SECTIONS
        assert acc.sections_dropped == 5
        # Re-recording a seen key is idempotent, not a drop.
        acc.record_section(0, (1, 0, 0, 0))
        assert acc.sections_dropped == 5

    def test_merge_and_round_trip(self):
        a = ArchAccumulator()
        a.record_commit("violation", (3, 1, 0, 2), 0x40, 7, 50, 40)
        a.record_section(12, (4, 1, 0, 2))
        b = ArchAccumulator()
        b.record_commit("violation", (2, 0, 0, 1), 0x40, 5, 30, 40)
        b.record_commit("final", (0, 0, 0, 0), None, 1, 10, 40)
        b.record_section(12, (4, 1, 0, 2))
        b.record_section(16, (1, 0, 0, 0))
        a.merge(b)
        assert a.commits == 3
        assert a.causes == {"violation": 2, "final": 1}
        assert a.hazards == {(0x40, "violation"): 2}
        assert set(a.sections) == {12, 16}
        restored = ArchAccumulator.from_dict(
            json.loads(json.dumps(a.to_dict()))
        )
        assert restored.to_dict() == a.to_dict()


class TestCli:
    def summary_path(self, tmp_path, workload="crc"):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((1, 0, 0, 0))
        COLLECTOR.reset()
        COLLECTOR.enable()
        try:
            simulate_fast(trace, config, ExponentialPower(800, 1),
                          verify=False, perf_watchdog="auto",
                          progress_watchdog="auto")
        finally:
            COLLECTOR.disable()
        summary = COLLECTOR.to_summary()
        if workload != "crc":
            summary["workloads"][workload] = summary["workloads"].pop("crc")
        path = tmp_path / "arch.json"
        path.write_text(json.dumps(summary))
        return str(path)

    def test_text_report(self, tmp_path, capsys):
        assert analyze.main([self.summary_path(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "architecture report" in out
        assert "crc" in out

    def test_json_round_trip(self, tmp_path, capsys):
        assert analyze.main([self.summary_path(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == analyze.SCHEMA
        assert doc["totals"]["runs"] == 1

    def test_html_escapes_workload_names(self, tmp_path):
        path = self.summary_path(tmp_path, workload="<script>x</script>")
        html_path = tmp_path / "arch.html"
        assert analyze.main([path, "--html", str(html_path)]) == 0
        html_out = html_path.read_text()
        assert "<script>" not in html_out
        assert "&lt;script&gt;" in html_out

    def test_event_log_input(self, tmp_path, capsys):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        rec = MemoryRecorder()
        result = IntermittentSimulator(
            trace, config, ExponentialPower(800, 1), verify=False,
            perf_watchdog="auto", progress_watchdog="auto", recorder=rec,
        ).run()
        path = tmp_path / "events.jsonl"
        with path.open("w") as fh:
            for event in rec.events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        assert analyze.main([str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["totals"]["commits"] == result.num_checkpoints

    def test_bad_input_is_error(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a summary"}\n')
        assert analyze.main([str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert analyze.main([str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err
