"""The batched schedule-vector replay: equivalence, fallback, dispatch.

The contract mirrors (and builds on) ``test_fast_replay.py``: a batch of
N schedules through :func:`repro.sim.batch.simulate_batch` must be
*bit-identical*, row for row, to N scalar :func:`repro.sim.fast.
simulate_fast` calls at the same seeds — across buffer configurations,
policy optimizations, PI marking, both chain-scan kernels, and every
fallback route (whole-batch ineligibility, ``REPRO_BATCH=0``, per-row
reruns).  The schedule matrix itself is pinned to the scalar generators:
row ``i`` of a :class:`~repro.power.schedules.ScheduleBatch` must equal,
draw for draw, the ``ExponentialPower`` seeded ``base + i*stride``.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core import cext
from repro.core.config import ClankConfig, PolicyOptimizations
from repro.eval.parallel import SimJob, run_jobs
from repro.eval.runner import pi_words_for
from repro.eval.settings import EvalSettings
from repro.obs.analyze import COLLECTOR as ARCH_COLLECTOR
from repro.power.schedules import ExponentialPower
from repro.sim.batch import (
    BatchResult,
    batch_enabled,
    batch_stats,
    numpy_available,
    reset_batch_stats,
    simulate_batch,
)
from repro.sim.fast import simulate_fast
from repro.workloads import get_trace

CONFIGS = [(1, 0, 0, 0), (8, 4, 0, 0), (8, 4, 2, 0), (16, 8, 4, 4)]

OPT_COMBOS = [
    PolicyOptimizations.none(),
    PolicyOptimizations.all(),
    PolicyOptimizations(ignore_false_writes=True),
    PolicyOptimizations(latest_checkpoint=True),
    PolicyOptimizations(no_wf_overflow=True, ignore_false_writes=True),
]

_WDTS = dict(perf_watchdog="auto", progress_watchdog="auto")


def _rows(trace, config, mean, base_seed, n, stride=1, **kw):
    """N scalar fast-path result dicts at the batch's row seeds."""
    out = []
    for i in range(n):
        res = simulate_fast(
            trace, config,
            ExponentialPower(mean, seed=base_seed + i * stride),
            verify=False, **kw,
        )
        out.append(res.to_dict(include_derived=False))
    return out


def _batch(trace, config, mean, base_seed, n, stride=1, **kw):
    """The same N rows through one batched replay."""
    schedules = ExponentialPower(mean, seed=base_seed).batch(
        n, 8, seed_stride=stride
    )
    return simulate_batch(trace, config, schedules, verify=False, **kw)


def _batch_dicts(batch):
    return [
        None if r is None else r.to_dict(include_derived=False)
        for r in batch.results
    ]


class TestEquivalence:
    """Batch-of-N vs N scalar calls, across the evaluation's shapes."""

    @pytest.mark.parametrize("name", ["crc", "fft", "rc4", "qsort"])
    def test_buffer_grid(self, name):
        trace = get_trace(name, "small")
        for spec in CONFIGS:
            config = ClankConfig.from_tuple(spec)
            for mean in (800, 2000):
                batch = _batch(trace, config, mean, 11, 4, stride=7, **_WDTS)
                scalar = _rows(trace, config, mean, 11, 4, stride=7, **_WDTS)
                assert _batch_dicts(batch) == scalar, (name, spec, mean)

    def test_optimization_combos(self):
        trace = get_trace("qsort", "small")
        for opts in OPT_COMBOS:
            config = ClankConfig(8, 4, 2, 4, optimizations=opts)
            batch = _batch(trace, config, 1200, 3, 3, **_WDTS)
            scalar = _rows(trace, config, 1200, 3, 3, **_WDTS)
            assert _batch_dicts(batch) == scalar, opts

    def test_pi_marking(self):
        trace = get_trace("rc4", "small")
        piw = pi_words_for(trace)
        config = ClankConfig(8, 4, 2, 0,
                             optimizations=PolicyOptimizations.all())
        kw = dict(pi_words=piw, **_WDTS)
        batch = _batch(trace, config, 1000, 5, 3, **kw)
        scalar = _rows(trace, config, 1000, 5, 3, **kw)
        assert _batch_dicts(batch) == scalar

    def test_tiny_buffers_heavy_watchdog_cuts(self):
        # rf=1 under ignore-false-writes: long sections, frequent
        # watchdog cuts — the shape that exercises the per-row cut-safety
        # check (and its scalar fallback) hardest.
        trace = get_trace("crc", "small")
        config = ClankConfig(
            1, 0, 0, 0,
            optimizations=PolicyOptimizations(ignore_false_writes=True),
        )
        kw = dict(perf_watchdog=0, progress_watchdog="auto")
        batch = _batch(trace, config, 800, 1, 4, **kw)
        scalar = _rows(trace, config, 800, 1, 4, **kw)
        assert _batch_dicts(batch) == scalar

    def test_kernel_toggle_identical(self, monkeypatch):
        # The C row walker and the NumPy lockstep walk must agree with
        # each other, not just with the scalar engines.
        trace = get_trace("fft", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        monkeypatch.setenv("REPRO_CEXT", "0")
        cext.reset_for_tests()
        try:
            lockstep = _batch_dicts(
                _batch(trace, config, 900, 2, 3, **_WDTS)
            )
            monkeypatch.setenv("REPRO_CEXT", "1")
            cext.reset_for_tests()
            via_c = _batch_dicts(_batch(trace, config, 900, 2, 3, **_WDTS))
        finally:
            cext.reset_for_tests()
        assert lockstep == via_c
        assert lockstep == _rows(trace, config, 900, 2, 3, **_WDTS)


class TestScheduleBatch:
    """Row ``i`` must be the scalar generator at ``base + i*stride``."""

    def test_rows_pin_to_scalar_generators(self):
        sb = ExponentialPower(900, seed=42).batch(4, 8, seed_stride=3)
        assert sb.seeds == [42, 45, 48, 51]
        for i in range(4):
            scalar = ExponentialPower(900, seed=42 + i * 3)
            draws = [scalar.next_on_time() for _ in range(8)]
            assert list(sb.matrix[i]) == draws, i

    def test_growth_preserves_draw_order(self):
        sb = ExponentialPower(700, seed=9).batch(3, 4)
        first = sb.matrix.copy()
        sb.ensure_columns(16)
        assert (sb.matrix[:, :4] == first).all()
        for i in range(3):
            scalar = ExponentialPower(700, seed=9 + i)
            draws = [scalar.next_on_time() for _ in range(16)]
            assert list(sb.matrix[i]) == draws, i

    def test_salted_seeding_matches_evaluation(self):
        # The evaluation seeds schedules ``seed*1000003 + salt``; row i of
        # a batch with stride s must reproduce the schedule at salt+i*s.
        settings = EvalSettings()
        base = settings.schedule(7)
        sb = base.batch(3, 6, seed_stride=23)
        for i in range(3):
            scalar = settings.schedule(7 + i * 23)
            draws = [scalar.next_on_time() for _ in range(6)]
            assert list(sb.matrix[i]) == draws, i


class TestFallback:
    """Every route off the lockstep walk must stay bit-exact."""

    def _setup(self):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        return trace, config

    def test_verify_default_routes_to_reference(self):
        # simulate_batch with no verify kwarg mirrors simulate_fast's
        # dispatch: the reference engine runs, with verification on.
        trace, config = self._setup()
        schedules = ExponentialPower(900, seed=1).batch(2, 8)
        batch = simulate_batch(trace, config, schedules, **_WDTS)
        assert batch.engines == ["reference", "reference"]
        assert all(r.verified for r in batch.results)

    def test_repro_batch_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert not batch_enabled()
        trace, config = self._setup()
        reset_batch_stats()
        batch = _batch(trace, config, 900, 4, 3, **_WDTS)
        assert batch.batch_rows == 0
        assert _batch_dicts(batch) == _rows(trace, config, 900, 4, 3,
                                            **_WDTS)
        stats = batch_stats()
        assert stats["rows_fallback"] == 3
        assert stats["reasons"].get("batch_disabled") == 3
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert batch_enabled() == numpy_available()

    def test_arch_collector_forces_scalar(self):
        # A live architecture collector needs the instrumented engines;
        # the batch must fall back whole and still agree row for row.
        trace, config = self._setup()
        scalar = _rows(trace, config, 900, 2, 2, **_WDTS)
        ARCH_COLLECTOR.reset()
        ARCH_COLLECTOR.enable()
        try:
            batch = _batch(trace, config, 900, 2, 2, **_WDTS)
        finally:
            ARCH_COLLECTOR.disable()
            ARCH_COLLECTOR.reset()
        assert batch.batch_rows == 0
        assert _batch_dicts(batch) == scalar

    def test_stats_account_every_row(self):
        trace, config = self._setup()
        reset_batch_stats()
        batch = _batch(trace, config, 900, 6, 4, **_WDTS)
        stats = batch_stats()
        assert stats["rows_batched"] + stats["rows_fallback"] == 4
        if batch_enabled():
            assert batch.batch_rows == stats["rows_batched"] > 0


class TestBatchResult:
    def _result(self):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 0, 0))
        return _batch(trace, config, 900, 1, 4, **_WDTS)

    def test_round_trip(self):
        batch = self._result()
        clone = BatchResult.from_dict(batch.to_dict())
        assert clone.name == batch.name
        assert clone.config_label == batch.config_label
        assert clone.engines == batch.engines
        assert clone.reasons == batch.reasons
        assert _batch_dicts(clone) == _batch_dicts(batch)
        assert clone.summary_stats() == batch.summary_stats()

    def test_mean_ci(self):
        batch = self._result()
        col = batch.column("checkpoint_overhead")
        mean, half = batch.mean_ci("checkpoint_overhead")
        assert mean == pytest.approx(sum(col) / len(col))
        assert half >= 0.0
        one = BatchResult(name="x", config_label="y",
                          results=batch.results[:1],
                          engines=batch.engines[:1],
                          reasons=batch.reasons[:1])
        assert one.mean_ci("checkpoint_overhead")[1] == 0.0
        empty = BatchResult(name="x", config_label="y")
        nan_mean, nan_half = empty.mean_ci("checkpoint_overhead")
        assert nan_mean != nan_mean and nan_half == 0.0  # NaN mean, 0 CI


class TestSeedRepeatJobs:
    """``SimJob.n_seeds`` through the sweep engine, serial and pooled."""

    def _jobs(self, n_seeds):
        return [
            SimJob(workload=name, config=(8, 4, 2, 0), size="small",
                   salt=5, n_seeds=n_seeds, seed_stride=3)
            for name in ("crc", "rc4")
        ]

    def test_rows_match_scalar_jobs(self):
        settings = EvalSettings(size="small", verify=False, profile=False)
        batches = run_jobs(self._jobs(3), settings, None)
        for job, batch in zip(self._jobs(3), batches):
            assert isinstance(batch, BatchResult)
            assert batch.rows == 3
            scalar = run_jobs(
                [SimJob(workload=job.workload, config=job.config,
                        size="small", salt=5 + r * 3) for r in range(3)],
                settings, None,
            )
            assert _batch_dicts(batch) == [
                r.to_dict(include_derived=False) for r in scalar
            ]

    def test_parallel_matches_serial(self):
        settings = EvalSettings(size="small", verify=False, profile=False)
        serial = run_jobs(self._jobs(4), settings, None)
        pooled = run_jobs(self._jobs(4), settings, 2)
        assert [b.to_dict() for b in serial] == [
            b.to_dict() for b in pooled
        ]
