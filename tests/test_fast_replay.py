"""The section-memoized fast path: equivalence, eligibility, caches.

The contract under test is strong: :class:`repro.sim.fast.FastReplaySimulator`
must be *bit-identical* to the reference :class:`IntermittentSimulator` on
every eligible run — same cycle buckets, same ``checkpoints_by_cause``,
same power-cycle and output counts — and :func:`simulate_fast` must fall
back to the reference (transparently and exactly) whenever a run is not
eligible.  The optional C chain-scan kernel (:mod:`repro.core.cext`) must
in turn be branch-identical to the pure-Python generator it ports.
"""

import pytest

from repro.core import cext
from repro.core.config import ClankConfig, PolicyOptimizations
from repro.core.detector import IdempotencyDetector
from repro.eval.runner import pi_words_for
from repro.obs.recorder import MemoryRecorder, NullRecorder
from repro.power.schedules import ExponentialPower, ReplayPower
from repro.sim.fast import (
    FastPathIneligible,
    FastReplaySimulator,
    fast_path_enabled,
    fast_stats,
    reset_fast_stats,
    simulate_fast,
)
from repro.sim.sections import (
    SectionMap,
    cache_stats,
    clear_cache,
    get_section_map,
    reset_cache_stats,
)
from repro.sim.simulator import IntermittentSimulator
from repro.trace.access import READ, WRITE
from repro.workloads import get_trace

from tests.conftest import DATA_WORD, make_trace

CONFIGS = [(1, 0, 0, 0), (8, 4, 0, 0), (8, 4, 2, 0), (16, 8, 4, 4)]

OPT_COMBOS = [
    PolicyOptimizations.none(),
    PolicyOptimizations.all(),
    PolicyOptimizations(ignore_false_writes=True),
    PolicyOptimizations(latest_checkpoint=True),
    PolicyOptimizations(no_wf_overflow=True, ignore_false_writes=True),
]


def _pair(trace, config, schedule_args, **kw):
    """(reference, fast) result dicts for one run; both verify=False."""
    ref = IntermittentSimulator(
        trace, config, ExponentialPower(*schedule_args), verify=False, **kw
    ).run()
    fast = simulate_fast(
        trace, config, ExponentialPower(*schedule_args), verify=False, **kw
    )
    return (
        ref.to_dict(include_derived=False),
        fast.to_dict(include_derived=False),
    )


class TestEquivalence:
    """Fast path vs. reference, across the shapes the evaluation sweeps."""

    @pytest.mark.parametrize("name", ["crc", "fft", "rc4", "qsort"])
    def test_buffer_grid(self, name):
        trace = get_trace(name, "small")
        for spec in CONFIGS:
            config = ClankConfig.from_tuple(spec)
            for seed in (1, 2):
                for on in (800, 2000):
                    a, b = _pair(
                        trace, config, (on, seed),
                        perf_watchdog="auto", progress_watchdog="auto",
                    )
                    assert a == b, (name, spec, seed, on)

    def test_optimization_combos(self):
        trace = get_trace("crc", "small")
        for opts in OPT_COMBOS:
            config = ClankConfig(8, 4, 2, 4, optimizations=opts)
            for seed in (3, 4):
                a, b = _pair(
                    trace, config, (1200, seed),
                    perf_watchdog="auto", progress_watchdog="auto",
                )
                assert a == b, opts

    def test_untracked_wbb_owned_writes(self):
        """Small-RF configs with a WBB under latest-checkpoint: sections
        enter the untracked tail with live WBB entries, and writes to the
        captured addresses must pass in place (never a latest_write
        boundary) in the reference simulator, the chain scan, and the
        watermark family alike."""
        trace = get_trace("rc4", "small")
        for spec in ((1, 0, 1, 0), (2, 1, 1, 0), (2, 2, 2, 0)):
            config = ClankConfig.from_tuple(spec)
            for seed in (1, 4):
                a, b = _pair(
                    trace, config, (600, seed),
                    perf_watchdog="auto", progress_watchdog="auto",
                )
                assert a == b, (spec, seed)
                assert a["checkpoints_by_cause"].get("latest_write", 0) == \
                    b["checkpoints_by_cause"].get("latest_write", 0)

    def test_no_watchdogs_and_perf_only(self):
        trace = get_trace("fft", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        for kw in (
            dict(perf_watchdog=0, progress_watchdog=0),
            dict(perf_watchdog="auto", progress_watchdog=0),
            dict(perf_watchdog=0, progress_watchdog="auto"),
        ):
            a, b = _pair(trace, config, (900, 7), **kw)
            assert a == b, kw

    def test_pi_marking(self):
        trace = get_trace("rc4", "small")
        piw = pi_words_for(trace)
        config = ClankConfig(8, 4, 2, 0,
                             optimizations=PolicyOptimizations.all())
        for seed in (5, 6):
            a, b = _pair(
                trace, config, (1000, seed),
                pi_words=piw, perf_watchdog="auto", progress_watchdog="auto",
            )
            assert a == b, seed

    def test_forced_checkpoints(self):
        trace = get_trace("qsort", "small")
        n = len(trace.accesses)
        forced = frozenset({0, n // 3, n // 2, n})
        config = ClankConfig.from_tuple((8, 4, 0, 0))
        for seed in (8, 9):
            a, b = _pair(
                trace, config, (700, seed),
                forced_checkpoints=forced,
                perf_watchdog="auto", progress_watchdog="auto",
            )
            assert a == b, seed

    def test_tiny_buffers_heavy_watchdog_cuts(self):
        # rf=1 under ignore-false-writes is the shape that exercises
        # watchdog_cut_safe hardest (long sections, frequent cuts).
        trace = get_trace("crc", "small")
        config = ClankConfig(
            1, 0, 0, 0,
            optimizations=PolicyOptimizations(ignore_false_writes=True),
        )
        for seed in (1, 2, 3):
            a, b = _pair(
                trace, config, (800, seed),
                perf_watchdog=0, progress_watchdog="auto",
            )
            assert a == b, seed


class TestEligibility:
    """Runs the section walk cannot carry must raise, and simulate_fast
    must transparently (and exactly) rerun them on the reference."""

    def _sim(self, **kw):
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        defaults = dict(verify=False, perf_watchdog="auto",
                        progress_watchdog="auto")
        defaults.update(kw)
        return FastReplaySimulator(
            trace, config, ExponentialPower(900, seed=1), **defaults
        )

    def test_verify_ineligible(self):
        with pytest.raises(FastPathIneligible):
            self._sim(verify=True).run()

    def test_live_recorder_ineligible(self):
        with pytest.raises(FastPathIneligible):
            self._sim(recorder=MemoryRecorder()).run()

    def test_null_recorder_eligible(self):
        # NullRecorder normalizes to "no recorder": stays on the fast path.
        assert self._sim(recorder=NullRecorder()).run().completed

    def test_volatile_ranges_ineligible(self):
        trace = get_trace("crc", "small")
        vol = (trace.memory_map.word_range("stack"),)
        with pytest.raises(FastPathIneligible):
            self._sim(volatile_ranges=vol).run()

    def test_pi_hazard_ineligible(self):
        # An access-marked PI write aliasing a tracked write of the same
        # word, under ignore-false-writes: the static hazard trips.
        trace = make_trace(
            [(WRITE, 0, 5), (READ, 1), (WRITE, 0, 5), (WRITE, 2, 1)]
        )
        config = ClankConfig(
            4, 2, 1, 0,
            optimizations=PolicyOptimizations(ignore_false_writes=True),
        )
        smap = SectionMap(trace, config, pi_access_indices=frozenset({2}))
        assert smap.pi_hazard
        sim = FastReplaySimulator(
            trace, config, ExponentialPower(500, seed=1),
            pi_access_indices=frozenset({2}), verify=False,
        )
        with pytest.raises(FastPathIneligible):
            sim.run()

    def test_fallback_is_exact(self):
        # verify=True is ineligible; simulate_fast must return the
        # reference's own result for the identical schedule.
        trace = get_trace("fft", "small")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        ref = IntermittentSimulator(
            trace, config, ExponentialPower(900, seed=2), verify=True
        ).run()
        reset_fast_stats()
        via = simulate_fast(
            trace, config, ExponentialPower(900, seed=2), verify=True
        )
        assert fast_stats() == {"fast": 0, "fallback": 1}
        assert via.to_dict() == ref.to_dict()

    def test_repro_fast_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "0")
        assert not fast_path_enabled()
        reset_fast_stats()
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 0, 0))
        simulate_fast(
            trace, config, ExponentialPower(900, seed=1), verify=False,
            perf_watchdog="auto", progress_watchdog="auto",
        )
        assert fast_stats() == {"fast": 0, "fallback": 1}
        monkeypatch.setenv("REPRO_FAST", "1")
        assert fast_path_enabled()


class TestCExtension:
    """The C chain-scan kernel vs. the pure-Python reference generator."""

    def _chain(self, det, ct, forced, pw, pi_idx):
        scratch = det.chain_scratch(ct)
        return list(
            (s, v, end, cause, steps)
            for s, v, end, cause, steps, _ in det.straightline_chain(
                ct, 0, False, -1, forced, pw, pi_idx, scratch
            )
        )

    def test_engine_matches_python_generator(self):
        lib = cext.chain_scan_lib()
        if lib is None:
            pytest.skip(f"C kernel unavailable: {cext.cext_status()}")
        names = cext.CAUSE_NAMES
        trace = get_trace("crc", "small")
        ct = trace.compiled()
        forced = [0, ct.n // 2]
        piw = pi_words_for(trace)
        for spec in CONFIGS:
            for opts in OPT_COMBOS:
                config = ClankConfig(*spec, optimizations=opts)
                det = IdempotencyDetector(
                    config, trace.memory_map.text_word_range
                )
                eng = det.chain_scan_engine(ct, forced, piw, frozenset())
                assert eng is not None
                nsec = eng.scan(0, 0, -1)
                from_c = [
                    (
                        eng.out_start[k], eng.out_variant[k], eng.out_end[k],
                        names[eng.out_cause[k]],
                        tuple(
                            eng.out_steps[eng.out_steps_off[k]:
                                          eng.out_steps_off[k + 1]]
                        ),
                    )
                    for k in range(nsec)
                ]
                assert from_c == self._chain(det, ct, forced, piw,
                                             frozenset())

    def test_first_dw_matches_python_collect_dw(self):
        lib = cext.chain_scan_lib()
        if lib is None:
            pytest.skip(f"C kernel unavailable: {cext.cext_status()}")
        trace = get_trace("fft", "small")
        ct = trace.compiled()
        opts = PolicyOptimizations(ignore_false_writes=True,
                                   no_wf_overflow=True)
        config = ClankConfig(4, 2, 1, 0, optimizations=opts)
        det = IdempotencyDetector(config, trace.memory_map.text_word_range)
        eng = det.chain_scan_engine(ct, [], frozenset(), frozenset())
        scratch = det.chain_scratch(ct)
        starts = [
            (s, v) for s, v, *_ in det.straightline_chain(
                ct, 0, False, -1, [], frozenset(), frozenset(), scratch
            )
        ][:8]
        for s, v in starts:
            chain = det.straightline_chain(
                ct, s, v == 2, s if v == 1 else -1, [],
                frozenset(), frozenset(), scratch, collect_dw=True,
            )
            py_dw = next(chain)[5]
            chain.close()
            assert eng.scan_first_dw(s, 1 if v == 2 else 0,
                                     s if v == 1 else -1) == py_dw

    def test_repro_cext_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_CEXT", "0")
        cext.reset_for_tests()
        try:
            assert cext.chain_scan_lib() is None
            assert "disabled" in cext.cext_status()
            # With the kernel gated off the SectionMap silently uses the
            # Python generator — and must produce the same sections.
            trace = get_trace("crc", "small")
            config = ClankConfig.from_tuple((8, 4, 2, 0))
            py_map = SectionMap(trace, config)
            py_map.section(0, 0)
            monkeypatch.setenv("REPRO_CEXT", "1")
            cext.reset_for_tests()
            c_map = SectionMap(trace, config)
            # The Python path materializes the whole chain eagerly; the C
            # path indexes it and materializes per query — every section
            # the reference enumerated must come back identical.
            assert py_map._sections
            for key, sec in py_map._sections.items():
                assert c_map.section(key >> 2, key & 3) == sec
        finally:
            cext.reset_for_tests()


class TestWatchdogCutSafe:
    def test_trivial_cases(self):
        trace = get_trace("crc", "small")
        config = ClankConfig(
            1, 0, 0, 0,
            optimizations=PolicyOptimizations(ignore_false_writes=True),
        )
        smap = SectionMap(trace, config)
        end, _, _, _ = smap.section(0, 0)
        # No failed cycle survived past the cut: nothing can be stale.
        assert smap.watchdog_cut_safe(0, 0, 1, max(2, end), [])
        # Reaches at or below the cut are re-committed by the committing
        # cycle itself.
        assert smap.watchdog_cut_safe(0, 0, 2, max(3, end), [(2, 0), (1, 0)])

    def test_direct_writes_memoized(self):
        trace = get_trace("crc", "small")
        config = ClankConfig(
            1, 0, 0, 0,
            optimizations=PolicyOptimizations(ignore_false_writes=True),
        )
        smap = SectionMap(trace, config)
        dw = smap._direct_writes(0, 0)
        assert dw == tuple(sorted(dw))
        assert smap._direct_writes(0, 0) is dw  # cached


class TestCaches:
    def test_section_map_cache_hits(self):
        clear_cache()
        reset_cache_stats()
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 0, 0))
        m1 = get_section_map(trace, config)
        m2 = get_section_map(trace, config)
        assert m1 is m2
        stats = cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["cached"] == 1
        assert stats["evictions"] == 0
        # A different config is a different key.
        get_section_map(trace, ClankConfig.from_tuple((1, 0, 0, 0)))
        assert cache_stats()["misses"] == 2

    def test_fast_stats_counts(self):
        reset_fast_stats()
        trace = get_trace("crc", "small")
        config = ClankConfig.from_tuple((8, 4, 0, 0))
        kw = dict(perf_watchdog="auto", progress_watchdog="auto")
        simulate_fast(trace, config, ExponentialPower(900, seed=1),
                      verify=False, **kw)
        simulate_fast(trace, config, ExponentialPower(900, seed=1),
                      verify=True, **kw)
        stats = fast_stats()
        assert stats["fast"] == 1 and stats["fallback"] == 1

    def test_compiled_trace_staleness(self):
        trace = make_trace([(WRITE, 0, 1), (READ, 0), (WRITE, 1, 2)])
        ct = trace.compiled()
        assert trace.compiled() is ct  # cached
        # Boundary-element identity is the safety net...
        trace.accesses.append(trace.accesses.pop())  # same objects: cached
        assert trace.compiled() is ct
        from repro.trace.access import Access
        trace.accesses.append(Access(READ, DATA_WORD, 1, 4))
        assert trace.compiled() is not ct  # length changed: rebuilt
        # ...and invalidate() is the explicit contract for interior edits.
        ct2 = trace.compiled()
        trace.invalidate()
        assert trace.compiled() is not ct2


class TestVolDirtyRollback:
    def test_rolled_back_volatile_words_not_billed(self):
        """Words dirtied by a rolled-back section must not inflate the next
        checkpoint's incremental-save cost (regression: ``vol_dirty`` was
        not cleared on power loss)."""
        vol_word = DATA_WORD + 4
        trace = make_trace(
            [
                (WRITE, 0, 11),
                (WRITE, 1, 12),
                (WRITE, 2, 13),
                (WRITE, 3, 14),
                (WRITE, 4, 15),  # the volatile word
                (WRITE, 5, 16),
            ]
        )
        config = ClankConfig.from_tuple((8, 8, 2, 0))
        # Cycle 1 (65): dies mid access 5, after dirtying the volatile
        # word.  Cycle 2 (106): progress watchdog fires after access 2;
        # its checkpoint precedes the volatile write, so with the rollback
        # clearing vol_dirty it must bill zero volatile words; it then
        # re-dirties the word and dies at access 5.  Cycle 3 (200): runs
        # from the cut to the final checkpoint, which bills one.
        result = IntermittentSimulator(
            trace,
            config,
            ReplayPower([65, 106, 200]),
            progress_watchdog=9,
            progress_watchdog_adaptive=False,
            volatile_ranges=((vol_word, vol_word + 1),),
            verify=True,
        ).run()
        assert result.verified
        assert result.checkpoints_by_cause == {"progress_wdt": 1, "final": 1}
        base = IntermittentSimulator(
            trace, config, ReplayPower([10 ** 6]), verify=True
        ).cost_model
        assert result.checkpoint_cycles == (
            base.checkpoint_cycles(0, 0) + base.checkpoint_cycles(0, 1)
        )
