"""Unit tests for the four Clank hardware buffers."""

import pytest

from repro.common.errors import ConfigError
from repro.core.buffers import (
    AddressPrefixBuffer,
    ReadFirstBuffer,
    WriteBackBuffer,
    WriteFirstBuffer,
)


class TestAddressSetBuffers:
    @pytest.mark.parametrize("cls", [ReadFirstBuffer, WriteFirstBuffer])
    def test_insert_until_full(self, cls):
        buf = cls(2)
        assert buf.insert(1)
        assert buf.insert(2)
        assert buf.full
        assert not buf.insert(3)
        assert 3 not in buf

    @pytest.mark.parametrize("cls", [ReadFirstBuffer, WriteFirstBuffer])
    def test_reinsert_existing_always_succeeds(self, cls):
        buf = cls(1)
        assert buf.insert(7)
        assert buf.insert(7)  # already resident: no overflow
        assert len(buf) == 1

    def test_discard(self):
        buf = ReadFirstBuffer(2)
        buf.insert(1)
        buf.discard(1)
        assert 1 not in buf
        buf.discard(99)  # absent: no error

    def test_clear(self):
        buf = WriteFirstBuffer(4)
        buf.insert(1)
        buf.insert(2)
        buf.clear()
        assert len(buf) == 0
        assert not buf.full

    def test_zero_capacity(self):
        buf = WriteFirstBuffer(0)
        assert buf.full
        assert not buf.insert(1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ReadFirstBuffer(-1)

    def test_iteration(self):
        buf = ReadFirstBuffer(4)
        buf.insert(3)
        buf.insert(5)
        assert sorted(buf) == [3, 5]


class TestWriteBackBuffer:
    def test_put_and_get(self):
        wbb = WriteBackBuffer(2)
        assert wbb.put(10, 0xAA)
        assert wbb.get(10) == 0xAA
        assert wbb.get(11) is None

    def test_update_in_place_never_overflows(self):
        wbb = WriteBackBuffer(1)
        assert wbb.put(10, 1)
        assert wbb.put(10, 2)  # update, not a new entry
        assert wbb.get(10) == 2
        assert not wbb.put(11, 3)  # overflow

    def test_drain_removes_everything(self):
        wbb = WriteBackBuffer(4)
        wbb.put(1, 10)
        wbb.put(2, 20)
        drained = wbb.drain()
        assert drained == {1: 10, 2: 20}
        assert len(wbb) == 0

    def test_clear_drops_without_flush(self):
        # Volatility is the free rollback (Section 3.1.2).
        wbb = WriteBackBuffer(4)
        wbb.put(1, 10)
        wbb.clear()
        assert wbb.get(1) is None

    def test_contains(self):
        wbb = WriteBackBuffer(1)
        wbb.put(5, 0)
        assert 5 in wbb
        assert 6 not in wbb


class TestAddressPrefixBuffer:
    def test_disabled_admits_everything(self):
        apb = AddressPrefixBuffer(0)
        assert not apb.enabled
        assert apb.admit(12345)
        assert apb.holds(99999)

    def test_prefix_sharing(self):
        apb = AddressPrefixBuffer(1, prefix_low_bits=6)
        assert apb.admit(0)
        assert apb.admit(63)  # same 64-word window
        assert not apb.admit(64)  # new prefix, buffer full
        assert len(apb) == 1

    def test_prefix_of(self):
        apb = AddressPrefixBuffer(4, prefix_low_bits=6)
        assert apb.prefix_of(0x40) == 1
        assert apb.prefix_of(0x3F) == 0

    def test_holds(self):
        apb = AddressPrefixBuffer(2, prefix_low_bits=6)
        apb.admit(0)
        assert apb.holds(5)
        assert not apb.holds(0x100)

    def test_clear_reclaims_prefixes(self):
        # Prefixes are only reclaimed at section reset (Section 3.1.3).
        apb = AddressPrefixBuffer(1, prefix_low_bits=6)
        apb.admit(0)
        assert not apb.admit(64)
        apb.clear()
        assert apb.admit(64)
