"""Shared test fixtures and synthetic-trace helpers."""

import random

import pytest

from repro.mem.map import default_memory_map
from repro.trace.access import READ, WRITE, Access
from repro.trace.trace import Trace

#: Word addresses inside the data segment, clear of anything else.
DATA_WORD = 0x2000_0000 >> 2


def make_trace(ops, name="synthetic", cycles=4, initial=None):
    """Build a validated synthetic trace from (kind, waddr_offset, value)
    triples; addresses are offsets from the data segment base.

    Read values are computed automatically from the evolving memory image
    (so callers only specify write values; pass value=None for reads).
    """
    image = {DATA_WORD + off: val for off, val in (initial or {}).items()}
    accesses = []
    mem = dict(image)
    for op in ops:
        kind, off = op[0], op[1]
        waddr = DATA_WORD + off
        if kind == READ:
            value = mem.get(waddr, 0)
            image.setdefault(waddr, value)
        else:
            value = op[2]
            image.setdefault(waddr, mem.get(waddr, 0))
            mem[waddr] = value
        accesses.append(Access(kind, waddr, value, cycles))
    trace = Trace(name=name, accesses=accesses, initial_image=image)
    trace.validate()
    return trace


def rmw_trace(n=100, addrs=8, seed=0, cycles=4):
    """A read-modify-write workload over a small address set — dense
    idempotency violations."""
    rng = random.Random(seed)
    ops = []
    values = {}
    for i in range(n):
        off = rng.randrange(addrs)
        ops.append((READ, off))
        new = rng.getrandbits(16)
        values[off] = new
        ops.append((WRITE, off, new))
    return make_trace(ops, name=f"rmw{n}")


def stream_trace(n=100, cycles=4):
    """A streaming workload: read input array, write output array — no
    violations at all."""
    ops = []
    for i in range(n):
        ops.append((READ, i))
        ops.append((WRITE, 1000 + i, i * 3 + 1))
    return make_trace(ops, name=f"stream{n}", initial={i: i * 7 for i in range(n)})


@pytest.fixture
def mmap():
    return default_memory_map()
