"""The ``python -m repro.obs.report`` sweep-report renderer."""

import json

import pytest

from repro.obs import report, telemetry
from repro.obs.chrome_trace import sweep_to_chrome_trace
from repro.obs.telemetry import Ledger, RunRecord


def sample_ledger():
    """A hand-built two-driver ledger with every engine represented."""
    records = [
        RunRecord(workload="crc", config="1,0,0,0", engine="fast",
                  kernel="c", driver="fig5", salt=0,
                  wall_s=0.010, t_start=0.0, worker=100, index=0),
        RunRecord(workload="aes", config="8,4,2,0", engine="fast",
                  kernel="c", driver="fig5", salt=1,
                  wall_s=0.200, t_start=0.011, worker=101, index=1),
        RunRecord(workload="crc", config="8,4,2,0", engine="reference",
                  fallback_reason="watchdog_cut", driver="fig5", salt=0,
                  wall_s=0.050, t_start=0.012, worker=100, index=2),
        RunRecord(workload="qsort", config="1,0,0,0",
                  engine="disk-cached-result", result_cache="hit",
                  driver="fig7", salt=0,
                  wall_s=0.0, t_start=0.3, worker=100, index=3),
        RunRecord(workload="rc4", config="16,8,4,4", engine="stalled",
                  stalled=True, driver="fig7", salt=2,
                  wall_s=0.002, t_start=0.31, worker=101, index=4),
    ]
    drivers = [
        {"type": "driver", "name": "fig5", "t0": 0.0, "t1": 0.25},
        {"type": "driver", "name": "fig7", "t0": 0.25, "t1": 0.4},
    ]
    return Ledger(
        header={"type": "sweep_start", "version": 1, "jobs": 2,
                "experiments": ["fig5", "fig7"]},
        records=records,
        drivers=drivers,
        footer={"type": "sweep_end", "wall_clock_s": 0.4,
                "dispatch": {"fast": 2, "fallback": 1},
                "aggregates": {"section_cache_hits": 3,
                               "section_cache_misses": 2,
                               "section_disk_loads": 1,
                               "disk_cache_hits": 1,
                               "disk_cache_misses": 3,
                               "disk_cache_puts": 3}},
    )


class TestSummary:
    def test_counts_and_slowest(self):
        s = report.summary(sample_ledger(), top=2)
        assert s["runs"] == 5
        assert s["engines"] == {"fast": 2, "reference": 1,
                                "disk-cached-result": 1, "stalled": 1}
        assert s["fallback_reasons"] == {"watchdog_cut": 1}
        assert s["kernels"] == {"c": 2}
        assert s["result_cache"] == {"off": 4, "hit": 1}
        assert s["stalled"] == 1
        assert [r["workload"] for r in s["slowest"]] == ["aes", "crc"]

    def test_driver_rows_join_marks_with_records(self):
        s = report.summary(sample_ledger())
        by_name = {row["driver"]: row for row in s["drivers"]}
        assert by_name["fig5"]["runs"] == 3
        assert by_name["fig5"]["wall_s"] == 0.25
        assert by_name["fig7"]["runs"] == 2

    def test_empty_ledger(self):
        s = report.summary(Ledger())
        assert s["runs"] == 0
        assert s["engines"] == {}
        assert s["slowest"] == []


class TestRenderText:
    def test_sections_present(self):
        text = report.render_text(sample_ledger())
        assert "sweep report — 5 runs" in text
        assert "engine mix" in text
        assert "fallback reasons" in text
        assert "watchdog_cut" in text
        assert "cache-tier funnel" in text
        assert "per-driver timings" in text
        assert "slowest runs" in text
        assert "artifact cache (disk): 1 hits / 3 misses" in text

    def test_empty_ledger_renders(self):
        assert "0 runs" in report.render_text(Ledger())


class TestRenderHtml:
    def test_is_selfcontained_html(self):
        html_out = report.render_html(sample_ledger())
        assert html_out.startswith("<!doctype html>")
        assert "<script" not in html_out  # static, dependency-free
        assert "Engine mix" in html_out
        assert "watchdog_cut" in html_out
        assert "aes" in html_out

    def test_escapes_content(self):
        ledger = Ledger(records=[RunRecord(
            workload="<b>evil</b>", config="1,0,0,0", engine="fast",
        )])
        html_out = report.render_html(ledger)
        assert "<b>evil</b>" not in html_out
        assert "&lt;b&gt;evil&lt;/b&gt;" in html_out

    def test_escapes_every_ledger_string(self):
        # Every string a hand-edited (or hostile) ledger can carry must
        # pass through html.escape — including the footer's wall clock,
        # which is interpolated outside the table helper.
        evil = "<script>alert(1)</script>"
        ledger = Ledger(
            header={"type": "sweep_start", "experiments": [evil],
                    "timestamp": evil},
            records=[RunRecord(
                workload=evil, config=evil, engine=evil,
                fallback_reason=evil, kernel=evil, driver=evil,
            )],
            drivers=[{"type": "driver", "name": evil, "t0": 0.0, "t1": 1.0}],
            footer={"type": "sweep_end", "wall_clock_s": evil},
        )
        html_out = report.render_html(ledger)
        assert "<script" not in html_out
        assert "&lt;script&gt;" in html_out


class TestSweepTrace:
    def test_lanes_and_spans(self):
        ledger = sample_ledger()
        trace = sweep_to_chrome_trace(ledger.records, ledger.drivers)
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["name"] == "thread_name"}
        assert names == {"drivers", "worker 100", "worker 101"}
        spans = [e for e in events if e["ph"] == "X"]
        # 2 driver spans + 5 run spans.
        assert len(spans) == 7
        run_spans = [e for e in spans if "engine" in e.get("args", {})]
        assert {e["args"]["engine"] for e in run_spans} == {
            "fast", "reference", "disk-cached-result", "stalled"}
        # Zero-wall cached runs stay visible as 1 us spans.
        cached = next(e for e in run_spans
                      if e["args"]["engine"] == "disk-cached-result")
        assert cached["dur"] == 1.0

    def test_times_are_microseconds(self):
        ledger = sample_ledger()
        trace = sweep_to_chrome_trace(ledger.records, ledger.drivers)
        aes = next(e for e in trace["traceEvents"]
                   if e.get("name") == "aes")
        assert aes["ts"] == pytest.approx(0.011 * 1e6)
        assert aes["dur"] == pytest.approx(0.200 * 1e6)


class TestCli:
    def _write(self, tmp_path):
        ledger = sample_ledger()
        led = telemetry.RunLedger()
        led.enable()
        for rec in ledger.records:
            led.record(RunRecord.from_dict(rec.to_dict()))
        led.driver_marks = [
            {"name": m["name"], "t0": m["t0"], "t1": m["t1"]}
            for m in ledger.drivers
        ]
        path = str(tmp_path / "ledger.jsonl")
        led.write_jsonl(path, header={"jobs": 2},
                        footer=ledger.footer)
        return path

    def test_text_and_artifacts(self, tmp_path, capsys):
        path = self._write(tmp_path)
        html_path = str(tmp_path / "report.html")
        trace_path = str(tmp_path / "trace.json")
        assert report.main([path, "--html", html_path,
                            "--chrome-trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "engine mix" in out
        with open(html_path) as fh:
            assert "Engine mix" in fh.read()
        with open(trace_path) as fh:
            assert json.load(fh)["otherData"]["runs"] == 5

    def test_json_output(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert report.main([path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["runs"] == 5
        assert data["engines"]["fast"] == 2

    def test_bad_input_is_error(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "power_failure"}\n')
        assert report.main([str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_arch_section_embedded(self, tmp_path, capsys):
        from repro.obs import analyze

        ledger_path = self._write(tmp_path)
        acc = analyze.ArchAccumulator()
        acc.record_commit("violation", (3, 1, 0, 2), 0x40, 7, 50, 40)
        arch_path = tmp_path / "arch.json"
        arch_path.write_text(json.dumps(
            analyze.summary_from_accumulator(acc, "crc", "8,4,2,0")
        ))
        html_path = tmp_path / "report.html"
        assert report.main([ledger_path, "--arch", str(arch_path),
                            "--html", str(html_path)]) == 0
        out = capsys.readouterr().out
        assert "-- architecture" in out
        assert "violation" in out
        html_out = html_path.read_text()
        assert "Architecture" in html_out
        assert "0x40" in html_out

    def test_bad_arch_input_is_error(self, tmp_path, capsys):
        ledger_path = self._write(tmp_path)
        bad = tmp_path / "arch.json"
        bad.write_text('{"not": "a summary"}\n')
        assert report.main([ledger_path, "--arch", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
