"""Unit tests for the sparse word memory."""

import pytest

from repro.common.errors import MemoryError_
from repro.mem.main_memory import MainMemory


class TestMainMemory:
    def test_uninitialized_reads_zero(self):
        mem = MainMemory()
        assert mem.read_word(0x100) == 0
        assert mem.read(0x400, 4) == 0

    def test_word_roundtrip(self):
        mem = MainMemory()
        mem.write_word(5, 0xDEADBEEF)
        assert mem.read_word(5) == 0xDEADBEEF

    def test_write_word_wraps_to_32_bits(self):
        mem = MainMemory()
        mem.write_word(1, 1 << 36)
        assert mem.read_word(1) == 0

    def test_subword_little_endian(self):
        mem = MainMemory()
        mem.write(0x100, 0xAABBCCDD, 4)
        assert mem.read(0x100, 1) == 0xDD
        assert mem.read(0x103, 1) == 0xAA
        assert mem.read(0x102, 2) == 0xAABB

    def test_byte_write_preserves_rest_of_word(self):
        mem = MainMemory()
        mem.write(0x100, 0x11223344, 4)
        mem.write(0x101, 0xFF, 1)
        assert mem.read(0x100, 4) == 0x1122FF44

    def test_halfword_write(self):
        mem = MainMemory()
        mem.write(0x102, 0xBEEF, 2)
        assert mem.read(0x100, 4) == 0xBEEF0000

    @pytest.mark.parametrize("addr,size", [(1, 4), (2, 4), (1, 2), (3, 2)])
    def test_misaligned_raises(self, addr, size):
        with pytest.raises(MemoryError_):
            MainMemory().read(addr, size)
        with pytest.raises(MemoryError_):
            MainMemory().write(addr, 0, size)

    def test_bad_size_raises(self):
        with pytest.raises(MemoryError_):
            MainMemory().read(0, 3)

    def test_snapshot_is_a_copy(self):
        mem = MainMemory()
        mem.write_word(1, 42)
        snap = mem.snapshot()
        mem.write_word(1, 43)
        assert snap[1] == 42

    def test_load_image_replaces(self):
        mem = MainMemory()
        mem.write_word(1, 42)
        mem.load_image({2: 7})
        assert mem.read_word(1) == 0
        assert mem.read_word(2) == 7

    def test_equality_ignores_explicit_zeros(self):
        a = MainMemory({1: 5, 2: 0})
        b = MainMemory({1: 5})
        assert a == b

    def test_len_counts_touched_words(self):
        mem = MainMemory()
        mem.write_word(1, 1)
        mem.write_word(2, 2)
        assert len(mem) == 2
