"""Unit tests for the reference monitor and its fifteen properties."""

import itertools

import pytest

from repro.common.errors import VerificationError
from repro.trace.access import READ, WRITE
from repro.verify.monitor import MONITOR_PROPERTIES, ReferenceMonitor


class TestBasicBehaviour:
    def test_read_then_write_violates(self):
        m = ReferenceMonitor()
        assert not m.access(READ, 1)
        assert m.access(WRITE, 1)  # P5

    def test_write_then_write_never_violates(self):
        m = ReferenceMonitor()
        assert not m.access(WRITE, 1)
        assert not m.access(WRITE, 1)  # P6

    def test_write_then_read_then_write_never_violates(self):
        m = ReferenceMonitor()
        m.access(WRITE, 1)
        assert not m.access(READ, 1)  # P7
        assert not m.access(WRITE, 1)

    def test_reads_never_violate(self):
        m = ReferenceMonitor()
        for _ in range(5):
            assert not m.access(READ, 3)  # P4

    def test_reset_clears(self):
        m = ReferenceMonitor()
        m.access(READ, 1)
        m.reset()
        assert not m.access(WRITE, 1)  # P9: fresh section

    def test_power_fail_clears(self):
        m = ReferenceMonitor()
        m.access(READ, 1)
        m.power_fail()
        assert not m.read_dominated  # P10

    def test_is_violation_is_pure(self):
        m = ReferenceMonitor()
        m.access(READ, 1)
        assert m.is_violation(WRITE, 1)
        assert m.is_violation(WRITE, 1)  # unchanged state
        assert not m.is_violation(READ, 1)

    def test_bad_kind_rejected(self):
        with pytest.raises(VerificationError):
            ReferenceMonitor().access(7, 1)

    def test_property_names(self):
        assert len(MONITOR_PROPERTIES) == 15


class TestPropertiesExhaustively:
    """Check the structural properties over every short access sequence —
    the reproduction of proving the monitor against its property list."""

    ADDRS = (0, 1)

    def all_sequences(self, length):
        symbols = [(READ, a) for a in self.ADDRS] + [(WRITE, a) for a in self.ADDRS]
        return itertools.product(symbols, repeat=length)

    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
    def test_partition_and_dominance(self, length):
        for seq in self.all_sequences(length):
            m = ReferenceMonitor()
            first_kind = {}
            for kind, addr in seq:
                violated = m.access(kind, addr)
                first_kind.setdefault(addr, kind)
                # P1/P14: the sets partition the accessed addresses.
                m.check_partition()
                assert m.accessed() == set(first_kind)
                # P2/P3/P12/P13: dominance equals the first access kind.
                for a, k in first_kind.items():
                    if k == READ:
                        assert a in m.read_dominated
                    else:
                        assert a in m.write_dominated
                # P5/P11: violation iff write to read-dominated.
                expected = kind == WRITE and first_kind[addr] == READ
                assert violated == expected

    def test_determinism(self):
        # P15: identical sequences produce identical signal streams.
        seq = [(READ, 0), (WRITE, 0), (WRITE, 1), (READ, 1), (WRITE, 1)]

        def signals():
            m = ReferenceMonitor()
            return [m.access(k, a) for k, a in seq]

        assert signals() == signals()

    def test_sets_only_grow_within_section(self):
        # P8: no access removes an address.
        for seq in self.all_sequences(4):
            m = ReferenceMonitor()
            prev = set()
            for kind, addr in seq:
                m.access(kind, addr)
                cur = m.accessed()
                assert prev <= cur
                prev = cur
