"""Persistent artifact cache: robustness contract + warm equivalence.

Exercises the contract documented in :mod:`repro.cache.store`:
corrupted entries load as misses and are repaired, eviction respects
the size cap, concurrent fork-pool writers never observe partial
files, and a disabled or unwritable store degrades silently.  On top
of the store, the integration layers are checked end-to-end: a
SectionMap warm-loaded from disk answers bit-identically, and the
whole-result cache round-trips (with the ``--verify`` exclusion and
the ``"stalled"`` sentinel).
"""

import os
import pickle

import pytest

import repro.cache as artifact_cache
from repro.cache.store import CacheStore, _EVICT_CHECK_INTERVAL
from repro.eval.parallel import SimJob, execute_job, run_jobs
from repro.eval.settings import EvalSettings
from repro.obs.profile import PROFILER
from repro.sim import sections
from repro.sim.sections import SectionMap, VARIANT_NORMAL
from repro.workloads.cache import get_trace

QUICK = EvalSettings(size="small", sweep_size="tiny", seed=2)


@pytest.fixture(autouse=True)
def _isolated_cache(monkeypatch):
    """Every test resolves its own store and leaves no global state."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
    artifact_cache.reset_for_tests()
    sections.clear_cache()
    yield
    sections.clear_cache()
    artifact_cache.reset_for_tests()
    artifact_cache.reset_stats()


def _enable(monkeypatch, tmp_path, max_mb=None):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    if max_mb is not None:
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", str(max_mb))
    artifact_cache.reset_for_tests()
    st = artifact_cache.store()
    assert st is not None
    return st


def _walk(smap):
    """Materialize the failure-free chain from (0, NORMAL)."""
    from repro.sim.sections import (
        SEC_FORCED, SEC_OUTPUT, SEC_TEXT, VARIANT_DIRECT,
        VARIANT_FORCED_DONE,
    )

    out = []
    s, v = 0, VARIANT_NORMAL
    while s < smap.n:
        sec = smap.section(s, v)
        out.append(((s, v), sec))
        end, _, kind, _ = sec
        if end >= smap.n:
            break
        if kind == SEC_FORCED:
            s, v = end, VARIANT_FORCED_DONE
        elif kind == SEC_TEXT:
            s, v = end, VARIANT_DIRECT
        else:
            s, v = (end + 1 if kind == SEC_OUTPUT else end), VARIANT_NORMAL
    return out


class TestStoreBasics:
    def test_round_trip_and_stats(self, tmp_path):
        st = CacheStore(str(tmp_path), 1 << 30)
        assert st.get("k", "ab" * 32) is None
        assert st.put("k", "ab" * 32, {"x": (1, 2)})
        assert st.get("k", "ab" * 32) == {"x": (1, 2)}
        assert st.stats() == {
            "hits": 1, "misses": 1, "puts": 1, "evictions": 0, "errors": 0,
            "remote_hits": 0, "remote_misses": 0, "remote_errors": 0,
        }

    def test_content_key_is_deterministic_and_versioned(self):
        a = artifact_cache.content_key("sections", "h", (1, 2))
        assert a == artifact_cache.content_key("sections", "h", (1, 2))
        assert a != artifact_cache.content_key("sections", "h", (1, 3))
        assert a != artifact_cache.content_key("result", "h", (1, 2))

    def test_disabled_without_env(self):
        assert artifact_cache.store() is None
        artifact_cache.persist_caches()  # must no-op, not raise

    def test_blank_env_is_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "   ")
        artifact_cache.reset_for_tests()
        assert artifact_cache.store() is None

    def test_counters_exact_under_thread_hammer(self, tmp_path):
        """The sweep server's pool-bridge threads bump one store's
        counters concurrently; the stats lock must keep them exact
        (bare ``+=`` on the attributes loses updates under the GIL)."""
        import threading

        st = CacheStore(str(tmp_path), 1 << 30)
        st.put("k", "ab" * 32, {"seed": 1})
        st.reset_counters()
        n_threads, n_ops = 8, 300

        def hammer(slot):
            for i in range(n_ops):
                st.get("k", "ab" * 32)                 # hit
                st.get("k", "cd" * 32)                 # miss
                st.put("k", f"{slot:02x}{i:04x}" * 8 + "ab" * 8,
                       {"slot": slot, "i": i})         # put

        threads = [threading.Thread(target=hammer, args=(s,))
                   for s in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = st.stats()
        assert snap["hits"] == n_threads * n_ops
        assert snap["misses"] == n_threads * n_ops
        assert snap["puts"] == n_threads * n_ops
        assert snap["errors"] == 0
        st.reset_counters()
        assert all(v == 0 for v in st.stats().values())


class TestCorruption:
    def test_corrupt_entry_is_a_miss_and_is_repaired(self, tmp_path):
        st = CacheStore(str(tmp_path), 1 << 30)
        key = "cd" * 32
        st.put("k", key, [1, 2, 3])
        path = st._path("k", key)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert st.get("k", key) is None
        assert st.errors == 1
        assert not os.path.exists(path)  # deleted so a put repairs it
        st.put("k", key, [4])
        assert st.get("k", key) == [4]

    def test_truncated_entry_is_a_miss(self, tmp_path):
        st = CacheStore(str(tmp_path), 1 << 30)
        key = "ef" * 32
        st.put("k", key, list(range(1000)))
        path = st._path("k", key)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert st.get("k", key) is None
        assert st.errors == 1

    def test_corrupt_sections_entry_recomputes_identically(
        self, monkeypatch, tmp_path
    ):
        trace = get_trace("crc", size="small")
        from repro.core.config import ClankConfig

        config = ClankConfig.from_tuple((8, 4, 2, 2))
        ref = _walk(SectionMap(trace, config))  # cache off: ground truth
        sections.clear_cache()

        st = _enable(monkeypatch, tmp_path)
        smap = SectionMap(trace, config)
        _walk(smap)
        smap.persist()
        path = st._path("sections", smap._disk_key)
        assert os.path.exists(path)
        with open(path, "wb") as fh:
            fh.write(b"\x80corrupt")
        sections.clear_cache()
        again = SectionMap(trace, config)
        assert again._loaded_n == 0  # corrupt load fell back to cold
        assert _walk(again) == ref


class TestEviction:
    def test_eviction_respects_size_cap(self, tmp_path):
        cap = 64 * 1024
        st = CacheStore(str(tmp_path), cap)
        payload = b"x" * 4096
        for i in range(4 * _EVICT_CHECK_INTERVAL):
            st.put("k", ("%064x" % i), payload)
        assert st.evictions > 0
        total = sum(
            os.path.getsize(os.path.join(dp, f))
            for dp, _, fs in os.walk(str(tmp_path))
            for f in fs
        )
        assert total <= cap

    def test_get_freshens_recency(self, tmp_path):
        st = CacheStore(str(tmp_path), 1 << 30)
        key = "aa" * 32
        st.put("k", key, 1)
        path = st._path("k", key)
        os.utime(path, (0, 0))
        st.get("k", key)
        assert os.stat(path).st_mtime > 0

    def test_store_max_mb_env(self, monkeypatch, tmp_path):
        st = _enable(monkeypatch, tmp_path, max_mb=1)
        assert st.max_bytes == 1024 * 1024


class TestDegradation:
    def test_unwritable_root_degrades_silently(self, tmp_path):
        # A plain file as the store root: every makedirs/mkstemp under
        # it fails, regardless of the uid running the tests.
        root = tmp_path / "not_a_dir"
        root.write_bytes(b"")
        st = CacheStore(str(root), 1 << 30)
        assert st.put("k", "ab" * 32, 1) is False
        assert not st._writable
        assert st.errors == 1
        # Further puts are silent no-ops; gets still answer (miss).
        assert st.put("k", "ab" * 32, 1) is False
        assert st.errors == 1
        assert st.get("k", "ab" * 32) is None

    def test_unpicklable_payload_degrades(self, tmp_path):
        st = CacheStore(str(tmp_path), 1 << 30)
        assert st.put("k", "ab" * 32, lambda: None) is False
        assert st.errors == 1
        # No temp litter from the failed write.
        leftovers = [
            f for dp, _, fs in os.walk(str(tmp_path)) for f in fs
        ]
        assert leftovers == []


class TestSectionMapWarmLoad:
    def test_warm_load_is_bit_identical(self, monkeypatch, tmp_path):
        trace = get_trace("crc", size="small")
        from repro.core.config import ClankConfig

        config = ClankConfig.from_tuple((8, 4, 2, 2))
        ref = _walk(SectionMap(trace, config))  # cache disabled
        sections.clear_cache()

        _enable(monkeypatch, tmp_path)
        cold = SectionMap(trace, config)
        assert cold._loaded_n == 0
        _walk(cold)
        artifact_cache.persist_caches()  # the registered flush hook
        sections.clear_cache()

        warm = SectionMap(trace, config)
        assert warm._loaded_n > 0
        assert _walk(warm) == ref

    def test_persist_skips_clean_maps(self, monkeypatch, tmp_path):
        trace = get_trace("crc", size="small")
        from repro.core.config import ClankConfig

        st = _enable(monkeypatch, tmp_path)
        smap = SectionMap(trace, ClankConfig.from_tuple((8, 4, 2, 2)))
        _walk(smap)
        smap.persist()
        puts = st.puts
        smap.persist()  # nothing new enumerated since the last flush
        assert st.puts == puts


class TestResultCache:
    JOB = SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny")

    def test_round_trip_matches_cold(self, monkeypatch, tmp_path):
        cold, _ = execute_job(self.JOB, QUICK)  # cache disabled
        st = _enable(monkeypatch, tmp_path)
        first, _ = execute_job(self.JOB, QUICK)
        assert st.puts >= 1
        hits = st.hits
        warm, warm_secs = execute_job(self.JOB, QUICK)
        assert st.hits > hits
        assert warm_secs == 0.0  # no simulation ran
        assert warm.to_dict() == first.to_dict() == cold.to_dict()

    def test_verify_runs_are_never_cached(self, monkeypatch, tmp_path):
        import dataclasses

        st = _enable(monkeypatch, tmp_path)
        vset = dataclasses.replace(QUICK, verify=True)
        execute_job(self.JOB, vset)
        assert not os.path.isdir(os.path.join(str(tmp_path), "result"))
        # Populate from a non-verify run, then verify again: still no
        # cache hit — verify must re-execute.
        execute_job(self.JOB, QUICK)
        hits = st.hits
        execute_job(self.JOB, vset)
        assert st.hits == hits

    def test_stalled_sentinel_round_trips(self, monkeypatch, tmp_path):
        job = SimJob(
            workload="crc", config=(16, 8, 4, 4), size="tiny",
            schedule="runt", runt_mean=2, runt_fraction=1.0,
            max_power_cycles=50, allow_stall=True,
        )
        st = _enable(monkeypatch, tmp_path)
        result, _ = execute_job(job, QUICK)
        assert result is None
        hits = st.hits
        result, secs = execute_job(job, QUICK)
        assert result is None and secs == 0.0
        assert st.hits > hits


class TestConcurrentWorkers:
    def test_fork_pool_writers_leave_a_clean_store(
        self, monkeypatch, tmp_path
    ):
        """Two workers race puts into one directory; afterwards every
        entry unpickles (atomic os.replace — no partial files) and no
        temp litter remains."""
        jobs = [
            SimJob(workload=w, config=c, size="tiny", salt=s)
            for w in ("crc", "qsort")
            for c in ((1, 0, 0, 0), (8, 4, 2, 0))
            for s in (0, 1)
        ]
        serial = run_jobs(jobs, QUICK, n_workers=1)  # cache disabled
        _enable(monkeypatch, tmp_path)
        first = run_jobs(jobs, QUICK, n_workers=2)
        for dirpath, _dirnames, filenames in os.walk(str(tmp_path)):
            for fname in filenames:
                assert not fname.endswith(".tmp"), "temp litter"
                with open(os.path.join(dirpath, fname), "rb") as fh:
                    pickle.load(fh)  # every entry is complete
        warm = run_jobs(jobs, QUICK, n_workers=2)
        for a, b, c in zip(serial, first, warm):
            assert a.to_dict() == b.to_dict() == c.to_dict()

    def test_worker_stats_merge_reports_disk_traffic(
        self, monkeypatch, tmp_path
    ):
        _enable(monkeypatch, tmp_path)
        jobs = [
            SimJob(workload="crc", config=(1, 0, 0, 0), size="tiny", salt=s)
            for s in range(4)
        ]
        PROFILER.reset()
        try:
            run_jobs(jobs, QUICK, n_workers=2)
            assert PROFILER.disk_cache_puts > 0
            assert PROFILER.disk_cache_misses > 0
            run_jobs(jobs, QUICK, n_workers=2)
            assert PROFILER.disk_cache_hits >= len(jobs)
        finally:
            PROFILER.reset()
