"""Chrome trace-event export: span geometry and JSON validity."""

import json

from repro.core.config import ClankConfig
from repro.obs.chrome_trace import (
    sweep_to_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.recorder import MemoryRecorder
from repro.power.schedules import ExponentialPower
from repro.sim.simulator import simulate

from tests.conftest import rmw_trace

CFG = ClankConfig.from_tuple((4, 2, 2, 0))


def recorded_run(seed=5):
    rec = MemoryRecorder()
    result = simulate(
        rmw_trace(400, addrs=16), CFG, ExponentialPower(800, seed=seed),
        progress_watchdog=300, verify=True, recorder=rec,
    )
    return result, rec


def spans(trace, lane):
    names = {
        e["args"]["name"]: e["tid"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    return [
        e for e in trace["traceEvents"]
        if e.get("ph") == "X" and e["tid"] == names[lane]
    ]


class TestChromeTrace:
    def test_json_round_trip(self, tmp_path):
        result, rec = recorded_run()
        path = str(tmp_path / "run.trace.json")
        write_chrome_trace(rec.events, path, name=result.name)
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded["traceEvents"]

    def test_one_span_per_power_on_period(self):
        result, rec = recorded_run()
        power = spans(to_chrome_trace(rec.events), "power")
        assert len(power) == result.power_cycles
        # Periods tile the consumed-cycle timeline without gaps.
        power.sort(key=lambda e: e["ts"])
        assert power[0]["ts"] == 0
        for prev, cur in zip(power, power[1:]):
            assert prev["ts"] + prev["dur"] == cur["ts"]
        end = power[-1]["ts"] + power[-1]["dur"]
        assert end == result.total_cycles

    def test_one_span_per_committed_checkpoint(self):
        result, rec = recorded_run()
        ckpts = spans(to_chrome_trace(rec.events), "checkpoints")
        assert len(ckpts) == result.num_checkpoints
        assert sum(e["dur"] for e in ckpts) == result.checkpoint_cycles

    def test_rollbacks_produce_reexec_spans(self):
        result, rec = recorded_run()
        rollbacks = [e for e in rec.events
                     if e.kind == "rollback" and e.from_index > e.to_index]
        reexec = [e for e in spans(to_chrome_trace(rec.events), "execution")
                  if e["name"] == "re-execution"]
        assert len(reexec) == len(rollbacks)

    def test_durations_never_negative(self):
        _, rec = recorded_run()
        for e in to_chrome_trace(rec.events)["traceEvents"]:
            if e.get("ph") == "X":
                assert e["dur"] >= 0


class TestDegenerateSweepLedgers:
    """Hand-edited or partial ledgers must render, not crash."""

    def _ledger(self, tmp_path, lines):
        import json as _json

        from repro.obs.telemetry import read_ledger

        path = tmp_path / "ledger.jsonl"
        with path.open("w") as fh:
            for line in lines:
                fh.write(_json.dumps(line) + "\n")
        return read_ledger(str(path))

    RUN = {"type": "run", "workload": "crc", "config": "8,4,2,0",
           "engine": "fast", "salt": 0, "result_cache": "off",
           "wall_s": 0.5, "t_start": 1.0, "worker": 101, "index": 0}

    def test_empty_ledger(self, tmp_path):
        led = self._ledger(tmp_path, [])
        trace = sweep_to_chrome_trace(led.records, drivers=led.drivers)
        assert trace["otherData"]["runs"] == 0

    def test_stalled_only_ledger(self, tmp_path):
        led = self._ledger(tmp_path, [
            dict(self.RUN, engine="stalled", stalled=True),
        ])
        trace = sweep_to_chrome_trace(led.records, drivers=led.drivers)
        [span] = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and "engine" in e.get("args", {})]
        assert span["args"]["stalled"] is True

    def test_null_wall_time_fields(self, tmp_path):
        led = self._ledger(tmp_path, [
            dict(self.RUN, t_start=None, wall_s=None, worker=None),
            self.RUN,
        ])
        trace = sweep_to_chrome_trace(led.records, drivers=led.drivers)
        spans = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and "engine" in e.get("args", {})]
        assert len(spans) == 2
        degenerate = min(spans, key=lambda e: e["ts"])
        assert degenerate["ts"] == 0.0
        assert degenerate["dur"] == 1.0  # still visible

    def test_mixed_typed_workers_get_distinct_lanes(self, tmp_path):
        led = self._ledger(tmp_path, [
            dict(self.RUN, worker="w1"),
            dict(self.RUN, worker=None, index=1),
            dict(self.RUN, index=2),
        ])
        trace = sweep_to_chrome_trace(led.records, drivers=led.drivers)
        lanes = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert lanes == {"drivers", "worker w1", "worker None",
                         "worker 101"}

    def test_null_driver_marks(self, tmp_path):
        led = self._ledger(tmp_path, [
            {"type": "driver", "name": "fig7", "t0": None, "t1": None},
            self.RUN,
        ])
        trace = sweep_to_chrome_trace(led.records, drivers=led.drivers)
        driver = next(e for e in trace["traceEvents"]
                      if e.get("name") == "fig7")
        assert driver["ts"] == 0.0 and driver["dur"] == 0.0

    def test_degenerate_ledger_json_serializable(self, tmp_path):
        import json as _json

        led = self._ledger(tmp_path, [dict(self.RUN, wall_s=None)])
        _json.dumps(sweep_to_chrome_trace(led.records))
