"""Event emission from the instrumented simulator, detector, and watchdogs.

The key contracts:

* every cause counted in ``checkpoints_by_cause`` has exactly that many
  matching ``CheckpointCommitted`` events,
* the dynamic verifier still passes with recording enabled,
* attaching a ``NullRecorder`` (or nothing) leaves the simulation result
  bit-for-bit identical to a recorded run's accounting.
"""

from collections import Counter

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.core.detector import IdempotencyDetector
from repro.core.watchdogs import ProgressWatchdog
from repro.obs.recorder import MemoryRecorder, NullRecorder
from repro.power.schedules import ContinuousPower, ExponentialPower
from repro.sim.simulator import simulate
from repro.trace.access import READ, WRITE

from tests.conftest import make_trace, rmw_trace, stream_trace

CFG = ClankConfig.from_tuple((4, 2, 2, 0))


def run_recorded(trace, config=CFG, seed=5, **kw):
    rec = MemoryRecorder()
    kw.setdefault("progress_watchdog", 300)
    result = simulate(
        trace,
        config,
        ExponentialPower(800, seed=seed),
        verify=True,
        recorder=rec,
        **kw,
    )
    return result, rec


class TestCheckpointEvents:
    def test_committed_events_match_cause_counts(self):
        result, rec = run_recorded(rmw_trace(400, addrs=16))
        by_cause = Counter(
            e.cause for e in rec.of_kind("checkpoint_committed")
        )
        assert by_cause == Counter(result.checkpoints_by_cause)
        assert result.verified  # the dynamic verifier ran and passed

    def test_one_section_closed_per_commit(self):
        result, rec = run_recorded(rmw_trace(300, addrs=12))
        assert len(rec.of_kind("section_closed")) == result.num_checkpoints
        # SectionClosed precedes its CheckpointCommitted at the same cause.
        kinds = [e.kind for e in rec
                 if e.kind in ("section_closed", "checkpoint_committed")]
        assert kinds[::2] == ["section_closed"] * (len(kinds) // 2)

    def test_power_failures_match_power_cycles(self):
        result, rec = run_recorded(rmw_trace(400, addrs=16))
        # Every period except the final one ends in a failure event
        # (run-phase or restart-phase).
        assert len(rec.of_kind("power_failure")) == result.power_cycles - 1

    def test_continuous_power_emits_no_failures(self):
        trace = stream_trace(60)
        rec = MemoryRecorder()
        result = simulate(
            trace, CFG, ContinuousPower(), verify=True, recorder=rec,
            progress_watchdog=300,
        )
        assert result.power_cycles == 1
        assert rec.of_kind("power_failure") == []
        assert rec.of_kind("rollback") == []
        assert len(rec.of_kind("checkpoint_committed")) == result.num_checkpoints

    def test_timestamps_monotonic_and_within_total(self):
        result, rec = run_recorded(rmw_trace(400, addrs=16))
        stamped = [e.t for e in rec if e.t is not None]
        assert stamped == sorted(stamped)
        assert stamped[-1] <= result.total_cycles


class TestMetricsAggregation:
    def test_result_metrics_populated_when_recording(self):
        result, rec = run_recorded(rmw_trace(300, addrs=12))
        counters = result.metrics["counters"]
        assert counters["checkpoints_committed"] == result.num_checkpoints
        hist = result.metrics["histograms"]["section_accesses"]
        assert hist["count"] == result.num_checkpoints
        flush = result.metrics["histograms"]["wbb_flush_words"]
        assert flush["sum"] == result.wbb_words_flushed

    def test_metrics_empty_without_recorder(self):
        result = simulate(
            rmw_trace(100), CFG, ExponentialPower(800, seed=5),
            progress_watchdog=300,
        )
        assert result.metrics == {}


class TestNullRecorderParity:
    def test_null_recorder_identical_to_no_recorder(self):
        trace = rmw_trace(400, addrs=16)
        kw = dict(progress_watchdog=300, verify=True)
        plain = simulate(trace, CFG, ExponentialPower(800, seed=5), **kw)
        null = simulate(
            trace, CFG, ExponentialPower(800, seed=5),
            recorder=NullRecorder(), **kw,
        )
        assert plain == null

    def test_memory_recorder_does_not_change_accounting(self):
        trace = rmw_trace(400, addrs=16)
        kw = dict(progress_watchdog=300, verify=True)
        plain = simulate(trace, CFG, ExponentialPower(800, seed=5), **kw)
        recorded, _ = run_recorded(trace)
        # metrics differ by construction; everything else must match
        assert recorded.to_dict(include_derived=False) | {"metrics": {}} == \
            plain.to_dict(include_derived=False)


class TestBufferOverflowEvents:
    def test_detector_emits_per_buffer_overflows(self):
        rec = MemoryRecorder()
        det = IdempotencyDetector(
            ClankConfig(rf_entries=1, wf_entries=1, wbb_entries=1,
                        apb_entries=0,
                        optimizations=PolicyOptimizations.none()),
            recorder=rec,
        )
        det.on_read(1)
        det.on_read(2)  # RF full
        det.on_write(10, 1, 0)
        det.on_write(11, 1, 0)  # WF full
        det.on_write(1, 5, 0)  # violation -> WBB
        overflows = {e.buffer for e in rec.of_kind("buffer_overflow")}
        assert overflows == {"rf", "wf"}

    def test_wbb_overflow_event_carries_address(self):
        rec = MemoryRecorder()
        det = IdempotencyDetector(
            ClankConfig(rf_entries=4, wf_entries=0, wbb_entries=1,
                        apb_entries=0),
            recorder=rec,
        )
        det.on_read(1)
        det.on_read(2)
        det.on_write(1, 9, 0)  # buffered
        det.on_write(2, 9, 0)  # WBB full
        events = rec.of_kind("buffer_overflow")
        assert [(e.buffer, e.waddr) for e in events] == [("wbb", 2)]

    def test_overflow_events_in_simulation(self):
        # One RF entry against a read-heavy stream: every second distinct
        # read fills the Read-first Buffer.
        result, rec = run_recorded(
            stream_trace(100), ClankConfig.from_tuple((1, 0, 0, 0))
        )
        overflows = rec.of_kind("buffer_overflow")
        assert overflows and all(e.buffer == "rf" for e in overflows)
        assert result.verified


class TestWatchdogEvents:
    def test_progress_watchdog_halving_emits_events(self):
        rec = MemoryRecorder()
        wdt = ProgressWatchdog(default_load=100, recorder=rec)
        wdt.on_restart()  # arms the no-checkpoint flag
        wdt.on_restart()  # enables at default load (no halving yet)
        wdt.on_restart()  # halves: 50
        wdt.on_restart()  # halves: 25
        loads = [e.load_value for e in rec.of_kind("watchdog_halved")]
        assert loads == [50, 25]

    def test_watchdog_fired_events_match_cause_counts(self):
        # Long violation-free stretches + tiny watchdog => wdt checkpoints.
        # Continuous power keeps every fired attempt committable.
        ops = [(WRITE, i, i + 1) for i in range(200)]
        trace = make_trace(ops, name="wdtload")
        rec = MemoryRecorder()
        result = simulate(
            trace, ClankConfig.infinite(), ContinuousPower(), verify=True,
            recorder=rec, perf_watchdog=64,
        )
        fired = rec.of_kind("watchdog_fired")
        assert len(fired) == result.checkpoints_by_cause.get("perf_wdt", 0)
        assert fired and all(e.watchdog == "performance" for e in fired)

    def test_output_commit_events(self):
        # A write into the MMIO segment commits under the output rule.
        from repro.mem.map import default_memory_map
        from repro.trace.access import Access
        from repro.trace.trace import Trace

        mmap = default_memory_map()
        mmio_word = mmap.word_range("mmio")[0]
        data_word = 0x2000_0000 >> 2
        accesses = [
            Access(WRITE, data_word, 7, 4),
            Access(WRITE, mmio_word, 42, 4),
        ]
        trace = Trace(
            name="out", accesses=accesses,
            initial_image={data_word: 0, mmio_word: 0}, memory_map=mmap,
        )
        rec = MemoryRecorder()
        result = simulate(
            trace, CFG, ContinuousPower(), verify=True, recorder=rec,
            progress_watchdog=300,
        )
        outs = rec.of_kind("output_committed")
        assert [(e.waddr, e.duplicate) for e in outs] == [(mmio_word, False)]
        assert result.outputs == 1
