"""Unit tests for ClankConfig and PolicyOptimizations."""

import pytest

from repro.common.errors import ConfigError
from repro.core.config import (
    ClankConfig,
    OPTIMIZATION_NAMES,
    PolicyOptimizations,
    TABLE2_CONFIGS,
    table2_configs,
)


class TestPolicyOptimizations:
    def test_none_and_all(self):
        assert PolicyOptimizations.none().enabled_names() == ()
        assert len(PolicyOptimizations.all().enabled_names()) == 5

    def test_only(self):
        opts = PolicyOptimizations.only("ignore_text")
        assert opts.enabled_names() == ("ignore_text",)

    def test_only_rejects_unknown(self):
        with pytest.raises(ConfigError):
            PolicyOptimizations.only("turbo")

    def test_all_settings_is_32(self):
        # The paper sweeps "over 32 policy optimization settings" (7.1).
        settings = PolicyOptimizations.all_settings()
        assert len(settings) == 32
        assert len(set(settings)) == 32

    def test_labels(self):
        assert PolicyOptimizations.none().label() == "none"
        assert PolicyOptimizations.all().label() == "all"
        assert PolicyOptimizations.only("latest_checkpoint").label() == "ltc"


class TestClankConfig:
    def test_requires_read_first_buffer(self):
        # The RF buffer is the only required component (Section 7.1).
        with pytest.raises(ConfigError):
            ClankConfig(rf_entries=0)

    def test_rejects_negative_entries(self):
        with pytest.raises(ConfigError):
            ClankConfig(rf_entries=1, wf_entries=-1)

    def test_single_rf_entry_is_30_bits(self):
        # The dashed vertical line of Figures 5-6 / Table 4's "30".
        assert ClankConfig.from_tuple((1, 0, 0, 0)).buffer_bits == 30

    def test_bits_without_apb(self):
        cfg = ClankConfig.from_tuple((2, 1, 1, 0))
        # 4 address entries (2 RF + 1 WF + 1 WBB) * 30 + one 32-bit value.
        assert cfg.buffer_bits == 4 * 30 + 32

    def test_bits_with_apb_matches_paper_example(self):
        # Section 3.1.3: 6 low bits + 2-bit tag = 8 vs 30; APB entry 24.
        cfg = ClankConfig.from_tuple((1, 0, 0, 4))
        assert cfg.tag_bits == 2
        assert cfg.entry_addr_bits == 8
        assert cfg.apb_entry_bits == 24
        assert cfg.buffer_bits == 8 + 4 * 24

    def test_label_roundtrip(self):
        cfg = ClankConfig.from_tuple((16, 8, 4, 4))
        assert cfg.label() == "16,8,4,4"

    def test_with_optimizations(self):
        cfg = ClankConfig.from_tuple((1, 0, 0, 0))
        cfg2 = cfg.with_optimizations(PolicyOptimizations.none())
        assert cfg2.optimizations.label() == "none"
        assert cfg2.rf_entries == 1

    def test_infinite_config(self):
        cfg = ClankConfig.infinite()
        assert cfg.rf_entries >= 1 << 20

    def test_table2_configs(self):
        configs = table2_configs()
        assert [c.label() for c in configs] == [
            "16,0,0,0", "8,8,0,0", "8,4,2,0", "16,8,4,4",
        ]
        assert TABLE2_CONFIGS[0] == (16, 0, 0, 0)

    def test_bits_monotone_in_entries(self):
        small = ClankConfig.from_tuple((1, 0, 0, 0)).buffer_bits
        big = ClankConfig.from_tuple((16, 8, 4, 0)).buffer_bits
        assert big > small

    def test_optimization_names_stable(self):
        assert OPTIMIZATION_NAMES == (
            "ignore_false_writes",
            "remove_duplicates",
            "no_wf_overflow",
            "ignore_text",
            "latest_checkpoint",
        )
