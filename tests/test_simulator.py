"""Integration tests for the intermittent policy simulator."""

import pytest

from repro.common.errors import SimulationError, VerificationError
from repro.core.config import ClankConfig, PolicyOptimizations
from repro.power.schedules import (
    ContinuousPower,
    ExponentialPower,
    FixedPower,
    ReplayPower,
)
from repro.sim.simulator import IntermittentSimulator, simulate
from repro.trace.access import READ, WRITE, Access
from repro.trace.trace import Trace

from tests.conftest import DATA_WORD, make_trace, rmw_trace, stream_trace

CFG = ClankConfig.from_tuple((4, 2, 2, 0))


def run(trace, config=CFG, schedule=None, **kw):
    schedule = schedule or ExponentialPower(800, seed=5)
    kw.setdefault("progress_watchdog", 300)
    return simulate(trace, config, schedule, **kw)


class TestContinuousExecution:
    def test_no_power_failures_minimal_overhead(self):
        trace = stream_trace(100)
        res = run(trace, schedule=ContinuousPower())
        assert res.power_cycles == 1
        assert res.reexec_cycles == 0
        assert res.useful_cycles == trace.total_cycles
        assert res.verified

    def test_stream_trace_needs_no_program_checkpoints(self):
        # No read-then-write: nothing violates while buffers suffice.
        trace = stream_trace(20)
        res = run(trace, ClankConfig.infinite(), ContinuousPower())
        assert res.checkpoints_by_cause == {"final": 1}

    def test_accounting_identity(self):
        trace = rmw_trace(150)
        res = run(trace)
        assert res.total_cycles == (
            res.useful_cycles
            + res.checkpoint_cycles
            + res.restart_cycles
            + res.reexec_cycles
            + res.wasted_cycles
        )
        assert res.useful_cycles == trace.total_cycles


class TestCheckpointCauses:
    def test_violation_cause_without_wbb(self):
        trace = rmw_trace(40)
        cfg = ClankConfig.from_tuple((8, 8, 0, 0), PolicyOptimizations.none())
        res = run(trace, cfg, ContinuousPower())
        assert res.checkpoints_by_cause.get("violation", 0) > 0

    def test_wbb_full_cause(self):
        trace = rmw_trace(60, addrs=8)
        cfg = ClankConfig.from_tuple((16, 8, 1, 0), PolicyOptimizations.none())
        res = run(trace, cfg, ContinuousPower())
        assert res.checkpoints_by_cause.get("wbb_full", 0) > 0

    def test_rf_full_cause(self):
        trace = make_trace([(READ, i) for i in range(20)])
        cfg = ClankConfig.from_tuple((2, 0, 0, 0), PolicyOptimizations.none())
        res = run(trace, cfg, ContinuousPower())
        assert res.checkpoints_by_cause.get("rf_full", 0) > 0

    def test_latest_checkpoint_defers_rf_full(self):
        trace = make_trace([(READ, i) for i in range(20)] + [(WRITE, 50, 1)])
        cfg = ClankConfig.from_tuple(
            (2, 0, 0, 0), PolicyOptimizations.only("latest_checkpoint")
        )
        res = run(trace, cfg, ContinuousPower())
        assert res.checkpoints_by_cause.get("rf_full", 0) == 0
        assert res.checkpoints_by_cause.get("latest_write", 0) == 1

    def test_perf_watchdog_cause(self):
        trace = stream_trace(500)
        res = run(trace, ClankConfig.infinite(), ContinuousPower(), perf_watchdog=500)
        assert res.checkpoints_by_cause.get("perf_wdt", 0) > 0

    def test_final_checkpoint_always_taken(self):
        res = run(stream_trace(5), schedule=ContinuousPower())
        assert res.checkpoints_by_cause.get("final") == 1


class TestPowerFailures:
    def test_reexecution_counted(self):
        trace = stream_trace(200)  # 1600 cycles
        res = run(trace, schedule=FixedPower(500))
        assert res.power_cycles > 1
        assert res.reexec_cycles + res.wasted_cycles > 0
        assert res.verified

    def test_deterministic_given_seed(self):
        trace = rmw_trace(120)
        r1 = run(trace, schedule=ExponentialPower(700, seed=9))
        r2 = run(trace, schedule=ExponentialPower(700, seed=9))
        assert r1.total_cycles == r2.total_cycles
        assert r1.checkpoints_by_cause == r2.checkpoints_by_cause

    def test_progress_watchdog_rescues_long_sections(self):
        # A violation-free program longer than any on-time needs the
        # Progress Watchdog to make forward progress at all.
        trace = stream_trace(400)  # 3200 cycles
        res = run(
            trace,
            ClankConfig.infinite(),
            ReplayPower([1000] * 10_000),
            progress_watchdog=400,
        )
        assert res.checkpoints_by_cause.get("progress_wdt", 0) > 0
        assert res.verified

    def test_unworkable_conditions_raise(self):
        # On-times below restart cost can never make progress.
        trace = stream_trace(50)
        with pytest.raises(SimulationError):
            simulate(
                trace, CFG, FixedPower(20),
                progress_watchdog=100, max_power_cycles=200,
            )

    def test_wasted_power_cycles_counted(self):
        trace = stream_trace(400)
        res = run(trace, ClankConfig.infinite(), ReplayPower([1000] * 10_000),
                  progress_watchdog=400)
        assert res.wasted_power_cycles >= 0
        assert res.power_cycles > res.wasted_power_cycles


class TestOutputCommit:
    def _trace_with_output(self):
        mmio_word = 0x4000_0000 >> 2
        accesses = [
            Access(WRITE, DATA_WORD, 1, 4),
            Access(WRITE, mmio_word, 0xBEEF, 4),
            Access(WRITE, DATA_WORD + 1, 2, 4),
        ]
        image = {DATA_WORD: 0, DATA_WORD + 1: 0, mmio_word: 0}
        return Trace("out", accesses, image)

    def test_output_surrounded_by_checkpoints(self):
        res = run(self._trace_with_output(), schedule=ContinuousPower())
        assert res.checkpoints_by_cause.get("output") == 2
        assert res.outputs == 1
        assert res.duplicate_outputs == 0

    def test_output_duplicates_counted_under_power_loss(self):
        # Die right after the output commits but before the trailing
        # checkpoint: the output is re-emitted on replay.
        trace = self._trace_with_output()
        res = simulate(
            trace, CFG,
            ReplayPower([44 + 40 + 4 + 40 + 4 + 2] + [10_000] * 50),
            progress_watchdog=0,
        )
        assert res.outputs >= 1
        assert res.verified


class TestDynamicVerification:
    def test_all_policy_settings_verify(self):
        trace = rmw_trace(80, addrs=5)
        for opts in PolicyOptimizations.all_settings():
            cfg = ClankConfig.from_tuple((2, 1, 1, 1), opts)
            res = run(trace, cfg, ExponentialPower(600, seed=11))
            assert res.verified

    def test_verification_catches_injected_corruption(self):
        trace = rmw_trace(30)
        # Corrupt the oracle: claim a read observed a different value.
        bad = Access(READ, trace.accesses[0].waddr, 0xDEAD, 4)
        trace.accesses.insert(0, bad)
        with pytest.raises(VerificationError):
            run(trace, schedule=ContinuousPower())

    def test_verify_flag_off_skips_checks(self):
        res = run(rmw_trace(30), verify=False, schedule=ContinuousPower())
        assert not res.verified

    def test_untracked_wbb_owned_write_stays_buffered(self):
        """Regression (hypothesis-found): in latest-checkpoint untracked
        mode, a write to a WBB-owned address must update the buffer in
        place — never pass the false-write test against the buffered
        (not-yet-durable) value and commit straight to NV.  Before the
        fix, NV held the buffered value after a rollback to a checkpoint
        that never flushed it, and replay diverged from the oracle."""
        # R@1, R@3 fill the RF; W@1 is a WAR violation captured by the
        # WBB; R@0, R@2 overflow the RF into untracked mode; the second
        # W@1 then matches the WBB entry's value exactly.
        program = [(READ, 1), (READ, 3), (WRITE, 1, 1),
                   (READ, 0), (READ, 2), (WRITE, 1, 1)]
        trace = make_trace(program)
        cfg = ClankConfig.from_tuple((2, 2, 1, 0))
        # A 72-cycle on-time dies during the final checkpoint, forcing a
        # full rollback with the WBB still unflushed.
        res = simulate(trace, cfg, ReplayPower([72, 2000]),
                       progress_watchdog=150, verify=True)
        assert res.verified
        assert res.useful_cycles == trace.total_cycles


class TestProgramIdempotentMarking:
    def test_pi_words_bypass_tracking(self):
        trace = stream_trace(50)
        pi = frozenset(a.waddr for a in trace.accesses)
        cfg = ClankConfig.from_tuple((1, 0, 0, 0), PolicyOptimizations.none())
        res = run(trace, cfg, ContinuousPower(), pi_words=pi)
        # Everything marked: the sole RF entry never fills.
        assert res.checkpoints_by_cause == {"final": 1}
        assert res.verified


class TestMixedVolatility:
    def _mixed_trace(self):
        # Volatile stack scratch + NV accumulator.
        stack_word = 0x2003_0000 >> 2
        ops = []
        for i in range(30):
            ops.append((WRITE, stack_word - DATA_WORD + (i % 4), i))
            ops.append((READ, stack_word - DATA_WORD + (i % 4)))
            ops.append((READ, 0))
            ops.append((WRITE, 0, i * 3))
        return make_trace(ops, name="mixed")

    def test_volatile_accesses_untracked(self):
        trace = self._mixed_trace()
        vol = (trace.memory_map.word_range("stack"),)
        cfg = ClankConfig.from_tuple((2, 1, 1, 0))
        res_mixed = run(trace, cfg, ExponentialPower(900, seed=3), volatile_ranges=vol)
        res_nv = run(trace, cfg, ExponentialPower(900, seed=3))
        assert res_mixed.verified and res_nv.verified
        # Untracked stack traffic means fewer checkpoints in mixed mode.
        assert res_mixed.num_checkpoints <= res_nv.num_checkpoints

    def test_mixed_final_state_verified(self):
        trace = self._mixed_trace()
        vol = (trace.memory_map.word_range("stack"),)
        res = run(trace, CFG, FixedPower(700), volatile_ranges=vol)
        assert res.verified


class TestResultReporting:
    def test_summary_mentions_key_numbers(self):
        res = run(stream_trace(50), schedule=ContinuousPower())
        text = res.summary()
        assert "stream50" in text
        assert "checkpoints" in text

    def test_overhead_properties(self):
        res = run(rmw_trace(100), schedule=ExponentialPower(900, seed=2))
        assert res.run_time_overhead >= 0
        total = res.total_overhead(0.02)
        assert total == pytest.approx(1 + res.run_time_overhead + 0.02)

    def test_auto_watchdogs(self):
        trace = stream_trace(300)
        sim = IntermittentSimulator(
            trace, CFG, ExponentialPower(1000, seed=1),
            perf_watchdog="auto", progress_watchdog="auto",
        )
        assert sim.perf_watchdog_load > 0
        assert sim.progress_watchdog_load == 500
