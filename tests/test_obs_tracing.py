"""Distributed tracing: the contracts in :mod:`repro.obs.tracing`.

The zero-cost-when-off discipline (one shared no-op span, empty buffer),
header propagation (``format_traceparent`` / ``parse_traceparent`` round
trips; malformed values degrade to a fresh trace), ambient nesting via
the context variable, the bounded buffer, JSONL export/merge dedupe, the
Chrome rendering, and — end to end against an in-process server — the
client job span → server resolve span → worker span causal chain across
all the dedupe-funnel tiers.
"""

import json

import pytest

import repro.cache as artifact_cache
from repro.eval.parallel import SimJob, run_jobs
from repro.eval.settings import EvalSettings
from repro.obs.chrome_trace import spans_to_chrome_trace
from repro.obs.tracing import (
    TRACER,
    Tracer,
    _NOOP,
    finish_span,
    format_traceparent,
    make_span,
    merge_spans,
    parse_traceparent,
    read_spans,
    write_spans,
)
from repro.serve import ServeClient, start_in_background, uninstall
from repro.sim import sections

SETTINGS = EvalSettings(size="tiny", verify=False, profile=False)


@pytest.fixture(autouse=True)
def _tracer_off():
    """Every test starts and ends with the shared tracer off and empty."""
    TRACER.disable()
    TRACER.reset()
    TRACER.export_path = None
    yield
    TRACER.disable()
    TRACER.reset()
    TRACER.export_path = None


class TestZeroCostWhenOff:
    def test_disabled_span_is_the_shared_noop(self):
        t = Tracer()
        assert t.span("a") is t.span("b")
        assert t.span("a") is _NOOP
        assert TRACER.span("x") is _NOOP

    def test_disabled_span_buffers_nothing(self):
        t = Tracer()
        with t.span("outer", workload="crc"):
            with t.span("inner"):
                pass
        assert t.spans == [] and t.dropped == 0

    def test_noop_span_api_surface(self):
        with TRACER.span("x") as s:
            assert s.set("k", "v") is s
            assert s.span_id is None and s.trace_id is None


class TestTraceparent:
    def test_round_trip(self):
        span = make_span("op", "client")
        header = format_traceparent(span["trace_id"], span["span_id"])
        assert parse_traceparent(header) == (
            span["trace_id"], span["span_id"]
        )

    @pytest.mark.parametrize("bad", [
        None, "", "deadbeef", "-", "abc-", "-abc",
        "xyz-123", "abc-12g4", "ABC-DEF",
    ])
    def test_malformed_values_parse_as_none(self, bad):
        assert parse_traceparent(bad) is None

    def test_whitespace_tolerated(self):
        assert parse_traceparent(" ab12-cd34 ") == ("ab12", "cd34")


class TestSpanNesting:
    def test_ambient_parenting_via_context_manager(self):
        t = Tracer()
        t.enable(service="eval")
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.span["parent_id"] == outer.span_id
        outer_d = next(s for s in t.spans if s["name"] == "outer")
        inner_d = next(s for s in t.spans if s["name"] == "inner")
        assert inner_d["parent_id"] == outer_d["span_id"]
        assert outer_d["parent_id"] is None
        assert outer_d["t1"] >= inner_d["t1"] >= inner_d["t0"] >= outer_d["t0"]

    def test_explicit_parent_beats_ambient(self):
        t = Tracer()
        t.enable()
        with t.span("ambient"):
            span = t.start("child", parent=("aaaa", "bbbb"))
        assert span["trace_id"] == "aaaa" and span["parent_id"] == "bbbb"

    def test_start_without_context_roots_a_new_trace(self):
        t = Tracer()
        t.enable()
        span = t.start("root")
        assert span["parent_id"] is None and span["trace_id"]

    def test_exception_recorded_and_context_restored(self):
        t = Tracer()
        t.enable()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert Tracer.current() is None
        assert t.spans[0]["attrs"]["error"] == "RuntimeError"


class TestBoundedBuffer:
    def test_drops_beyond_max_spans(self):
        t = Tracer(max_spans=3)
        t.enable()
        for i in range(5):
            t.finish(t.start(f"s{i}"))
        assert len(t.spans) == 3 and t.dropped == 2
        t.reset()
        assert t.spans == [] and t.dropped == 0


class TestExportAndMerge:
    def test_jsonl_round_trip(self, tmp_path):
        spans = [finish_span(make_span(f"s{i}", "eval")) for i in range(3)]
        path = str(tmp_path / "spans.jsonl")
        write_spans(spans, path)
        assert read_spans(path) == spans

    def test_flush_appends_and_clears(self, tmp_path):
        t = Tracer()
        path = str(tmp_path / "out.jsonl")
        t.enable(export_path=path)
        t.finish(t.start("a"))
        assert t.flush() == 1
        t.finish(t.start("b"))
        assert t.flush() == 1
        assert t.spans == []
        assert [s["name"] for s in read_spans(path)] == ["a", "b"]

    def test_read_rejects_non_span_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_span_id": 1}\n')
        with pytest.raises(ValueError, match="not a span line"):
            read_spans(str(path))

    def test_merge_dedupes_by_span_id(self):
        shared = finish_span(make_span("worker job", "worker"))
        client_only = finish_span(make_span("client job", "client"))
        merged = merge_spans([[shared, client_only], [dict(shared)]])
        assert len(merged) == 2
        assert merged == sorted(merged, key=lambda s: s["t0"])


class TestChromeRendering:
    def test_groups_by_service_and_parents_nest(self):
        client = finish_span(make_span("serve.batch", "client"))
        resolve = finish_span(make_span(
            "resolve", "server",
            trace_id=client["trace_id"], parent_id=client["span_id"],
        ))
        trace = spans_to_chrome_trace([client, resolve])
        names = {
            ev["args"]["name"] for ev in trace["traceEvents"]
            if ev["name"] == "process_name"
        }
        assert len(names) == 2  # client and server Chrome processes
        spans = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
        assert {ev["name"] for ev in spans} == {"serve.batch", "resolve"}
        args = {ev["name"]: ev["args"] for ev in spans}
        assert args["resolve"]["parent_id"] == client["span_id"]
        json.dumps(trace)

    def test_empty_input(self):
        assert spans_to_chrome_trace([])["traceEvents"] == []


@pytest.fixture()
def served_tracer(monkeypatch, tmp_path):
    """A loopback server plus both-sided tracing, isolated caches."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_REMOTE", raising=False)
    artifact_cache.reset_for_tests()
    sections.clear_cache()
    uninstall()
    TRACER.reset()
    TRACER.enable(service="client")
    handle = start_in_background(jobs=1)
    yield handle
    handle.stop()
    uninstall()
    sections.clear_cache()
    artifact_cache.reset_for_tests()


class TestEndToEndPropagation:
    def test_client_server_worker_span_chain(self, served_tracer):
        """One in-process loopback batch produces the full causal chain:
        every server resolve span is parented under the exact client job
        span that awaited it, and computed jobs hang a worker simulate
        span under their resolve span."""
        jobs = [
            SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=0),
            SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=0),
            SimJob(workload="rc4", config=(4, 2, 1, 0), size="tiny", salt=0),
        ]
        client = ServeClient(served_tracer.url)
        client.run_jobs(jobs, SETTINGS)
        # Repeat batch: answered from the memory tier, new client spans.
        ServeClient(served_tracer.url).run_jobs(jobs, SETTINGS)

        spans = TRACER.spans
        by_id = {s["span_id"]: s for s in spans}
        client_jobs = [s for s in spans
                       if s["service"] == "client"
                       and s["name"].startswith("job ")]
        resolves = [s for s in spans if s["name"] == "resolve"]
        workers = [s for s in spans if s["service"] == "worker"]
        assert len(client_jobs) == 6
        assert len(resolves) == 6
        # 2 computed + (1 coalesced or memory) + 3 memory replays; a
        # memory/coalesced answer never re-runs the worker.
        assert len(workers) == 2

        for r in resolves:
            parent = by_id[r["parent_id"]]
            assert parent in client_jobs
            assert r["trace_id"] == parent["trace_id"]
            assert parent["t0"] <= r["t0"] and r["t1"] <= parent["t1"]
        for w in workers:
            parent = by_id[w["parent_id"]]
            assert parent in resolves
            assert parent["attrs"]["tier"] == "computed"
        tiers = sorted(r["attrs"]["tier"] for r in resolves)
        assert tiers.count("computed") == 2
        assert tiers.count("memory") >= 3

    def test_five_tiers_reach_the_resolve_span(self, served_tracer,
                                               monkeypatch, tmp_path):
        """The resolve span's tier attribute spans the dedupe funnel:
        computed and coalesced within one batch, memory on a repeat, and
        disk once the memory tier is evicted to zero."""
        dup = SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=5)
        client = ServeClient(served_tracer.url)
        client.run_jobs([dup, dup], SETTINGS)
        client.run_jobs([dup], SETTINGS)
        tiers = {s["attrs"]["tier"] for s in TRACER.spans
                 if s["name"] == "resolve"}
        assert {"computed", "coalesced", "memory"} <= tiers

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.reset_for_tests()
        disk_server = start_in_background(jobs=1, memory_entries=0)
        try:
            c = ServeClient(disk_server.url)
            c.run_jobs([dup], SETTINGS)
            c.run_jobs([dup], SETTINGS)
        finally:
            disk_server.stop()
        tiers = {s["attrs"]["tier"] for s in TRACER.spans
                 if s["name"] == "resolve"}
        assert "disk" in tiers

    def test_served_results_identical_with_tracing(self, served_tracer):
        """Tracing must never leak into results (byte identity)."""
        jobs = [SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny")]
        traced = ServeClient(served_tracer.url).run_jobs(jobs, SETTINGS)
        TRACER.disable()
        plain = run_jobs(jobs, SETTINGS, 1)
        assert [r.to_dict(include_derived=False) for r in traced] == \
               [r.to_dict(include_derived=False) for r in plain]
