"""Tests for the ``python -m repro.eval`` command-line interface."""

import pytest

from repro.eval.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "clank" in out
        assert "completed in" in out

    def test_quick_table4(self, capsys):
        assert main(["table4", "--quick", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "mixed" in out and "wholly-nv" in out

    def test_ablation_listed(self, capsys):
        assert main(["ablation_apb", "--quick"]) == 0
        assert "low bits" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_verify_flag(self, capsys):
        assert main(["table1", "--quick", "--verify"]) == 0
        assert "average" in capsys.readouterr().out
