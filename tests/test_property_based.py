"""Property-based tests (hypothesis) on the core invariants.

The central property mirrors the paper's formal claim: for *any* program
(access sequence) under *any* power schedule and *any* buffer
configuration, intermittent execution under Clank is indistinguishable from
one continuous execution — enforced here by the simulator's dynamic
verifier, which raises on any divergence.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.core.detector import (
    CHECKPOINT,
    CHECKPOINT_THEN_WRITE,
    PROCEED,
    PROCEED_WBB,
    IdempotencyDetector,
)
from repro.power.schedules import ExponentialPower, ReplayPower
from repro.sim.simulator import simulate
from repro.trace.access import READ, WRITE
from repro.verify.bounded import check_against_monitor
from repro.verify.monitor import ReferenceMonitor

from tests.conftest import make_trace

# ---- strategies -------------------------------------------------------- #

ops = st.lists(
    st.tuples(
        st.sampled_from([READ, WRITE]),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=120,
).map(lambda raw: [(k, off) if k == READ else (k, off, v) for k, off, v in raw])

configs = st.tuples(
    st.integers(1, 4), st.integers(0, 3), st.integers(0, 3), st.integers(0, 2)
)

opt_settings = st.sampled_from(PolicyOptimizations.all_settings())


# ---- the headline property -------------------------------------------- #


@settings(max_examples=120, deadline=None)
@given(program=ops, spec=configs, opts=opt_settings, seed=st.integers(0, 1000))
def test_intermittent_execution_matches_oracle(program, spec, opts, seed):
    """Any program, any config, any optimization setting, any power stream:
    every replayed read sees the oracle's value and the final memory equals
    the oracle's (simulate() raises VerificationError otherwise)."""
    trace = make_trace(program)
    config = ClankConfig.from_tuple(spec, opts)
    result = simulate(
        trace,
        config,
        ExponentialPower(max(60, trace.total_cycles // 3), seed=seed),
        progress_watchdog=200,
        verify=True,
    )
    assert result.verified
    assert result.useful_cycles == trace.total_cycles


@settings(max_examples=60, deadline=None)
@given(
    program=ops,
    on_times=st.lists(st.integers(90, 2000), min_size=1, max_size=30),
)
def test_adversarial_power_placement(program, on_times):
    """Replay-driven power schedules let hypothesis place failures at
    pathological points (right after outputs, mid-section, etc.)."""
    trace = make_trace(program)
    result = simulate(
        trace,
        ClankConfig.from_tuple((2, 1, 1, 1)),
        ReplayPower(on_times + [10_000_000]),
        progress_watchdog=150,
        verify=True,
    )
    assert result.verified


# ---- detector-level properties ----------------------------------------- #


@settings(max_examples=150, deadline=None)
@given(program=ops, spec=configs, opts=opt_settings)
def test_detector_never_commits_true_violation(program, spec, opts):
    """The layering property against the infinite-resource monitor."""
    seq = [
        (k, 0x100 + op[1], op[2] if k == WRITE else 0)
        for op in program
        for k in [op[0]]
    ]
    check_against_monitor(seq, ClankConfig.from_tuple(spec, opts))


@settings(max_examples=150, deadline=None)
@given(program=ops, spec=configs, opts=opt_settings)
def test_detector_buffer_disjointness(program, spec, opts):
    """No address is simultaneously read- and write-dominated, and buffer
    occupancy never exceeds capacity."""
    config = ClankConfig.from_tuple(spec, opts)
    det = IdempotencyDetector(config)
    nv = {}
    for op in program:
        kind, off = op[0], op[1]
        w = 0x100 + off
        if kind == READ:
            action, _ = det.on_read(w)
        else:
            cur = det.wbb_value(w)
            if cur is None:
                cur = nv.get(w, 0)
            action, _ = det.on_write(w, op[2], cur)
            if action in (CHECKPOINT, CHECKPOINT_THEN_WRITE):
                nv.update(det.reset_section())
                continue
            if action == PROCEED:
                nv[w] = op[2]
        if action == CHECKPOINT:
            nv.update(det.reset_section())
            continue
        rf = set(det.rf)
        wf = set(det.wf)
        assert rf.isdisjoint(wf)
        occ = det.occupancy()
        assert occ["rf"] <= config.rf_entries
        assert occ["wf"] <= config.wf_entries
        assert occ["wbb"] <= config.wbb_entries
        if config.apb_entries:
            assert occ["apb"] <= config.apb_entries


@settings(max_examples=200, deadline=None)
@given(
    seq=st.lists(
        st.tuples(st.sampled_from([READ, WRITE]), st.integers(0, 5)),
        min_size=1,
        max_size=60,
    )
)
def test_monitor_partition_invariant(seq):
    """Reference-monitor P1/P14 under arbitrary drives."""
    m = ReferenceMonitor()
    for kind, addr in seq:
        m.access(kind, addr)
        m.check_partition()
        assert m.accessed() == m.read_dominated | m.write_dominated


# ---- accounting properties --------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(program=ops, seed=st.integers(0, 50))
def test_cycle_accounting_identity(program, seed):
    """total == useful + checkpoint + restart + reexec + wasted, always."""
    trace = make_trace(program)
    result = simulate(
        trace,
        ClankConfig.from_tuple((2, 2, 1, 0)),
        ExponentialPower(500, seed=seed),
        progress_watchdog=150,
        verify=True,
    )
    assert result.total_cycles == (
        result.useful_cycles
        + result.checkpoint_cycles
        + result.restart_cycles
        + result.reexec_cycles
        + result.wasted_cycles
    )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_power_schedule_determinism(seed):
    a = ExponentialPower(1000, seed=seed)
    b = ExponentialPower(1000, seed=seed)
    assert [a.next_on_time() for _ in range(5)] == [
        b.next_on_time() for _ in range(5)
    ]
