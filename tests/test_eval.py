"""Smoke + shape tests for every experiment driver (quick settings)."""

import pytest

from repro.eval import table1, fig5, fig6, table2, fig7, fig8, table3, table4
from repro.eval.pareto import pareto_frontier
from repro.eval.settings import EvalSettings

QUICK = EvalSettings(size="small", sweep_size="tiny", seed=2)


class TestPareto:
    def test_dominated_points_removed(self):
        pts = [(10, 0.5, "a"), (20, 0.6, "b"), (20, 0.3, "c"), (30, 0.1, "d")]
        frontier = pareto_frontier(pts)
        assert [p[2] for p in frontier] == ["a", "c", "d"]

    def test_sorted_by_cost(self):
        pts = [(30, 0.1, "x"), (10, 0.9, "y")]
        assert [p[0] for p in pareto_frontier(pts)] == [10, 30]

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestTable1:
    def test_rows_and_render(self):
        rows = table1.run(QUICK)
        assert len(rows) == 23
        assert all(r.size_bytes > 0 and r.running_ms > 0 for r in rows)
        text = table1.render(rows)
        assert "average" in text and "crc" in text

    def test_tiny_benchmarks_have_big_relative_increase(self):
        rows = {r.name: r for r in table1.run(QUICK)}
        assert rows["randmath"].size_increase > rows["sha"].size_increase


class TestFig5:
    def test_family_configs_grow(self):
        assert len(fig5.family_configs("R")) < len(fig5.family_configs("R+W+B+A"))

    @pytest.mark.slow
    def test_frontier_shapes(self):
        data = fig5.run(QUICK)
        for family in fig5.FAMILIES:
            frontier = data.frontiers[family]
            assert frontier, family
            values = [v for _, v, _ in frontier]
            assert values == sorted(values, reverse=True)  # staircase down
        text = fig5.render(data)
        assert "R+W+B+A+C" in text

    def test_ci_render_degenerate_intervals(self):
        """Zero variance renders ``deterministic``, sub-display-precision
        renders ``±<0.01%`` — never the self-contradictory ``±0.00%``."""
        frontiers = {f: [] for f in fig5.FAMILIES}
        frontiers["R"] = [
            (30, 0.5, "1,0,0,0"), (60, 0.4, "2,0,0,0"), (90, 0.3, "4,0,0,0")
        ]
        data = fig5.Fig5Data(frontiers=frontiers, seeds=10, ci={
            ("R", "1,0,0,0"): (0.5, 0.0),
            ("R", "2,0,0,0"): (0.4, 2e-05),
            ("R", "4,0,0,0"): (0.3, 0.012),
        })
        text = fig5.render(data)
        assert "deterministic" in text
        assert "±<0.01%" in text
        assert "±1.20%" in text
        assert "±0.00%" not in text


class TestFig6:
    @pytest.mark.slow
    def test_profiled_is_lower_envelope(self):
        data = fig6.run(QUICK)
        # At every frontier point cost, profiled <= the 'none' setting.
        prof = {c: v for c, v, _ in data.frontiers["profiled"]}
        none = {c: v for c, v, _ in data.frontiers["none"]}
        common = set(prof) & set(none)
        assert common
        assert all(prof[c] <= none[c] + 1e-9 for c in common)
        assert "profiled" in fig6.render(data)


class TestTable2:
    def test_rows_and_trend(self):
        rows = table2.run(QUICK)
        assert [r.label for r in rows] == [
            "16,0,0,0", "8,8,0,0", "8,4,2,0", "16,8,4,4", "16,8,4,4+C+WDT",
        ]
        # The best configuration beats the sole-RF configuration.
        assert rows[-1].avg_software < rows[0].avg_software
        assert "paper" in table2.render(rows)


class TestFig7:
    def test_bars_and_averages(self):
        data = fig7.run(QUICK)
        assert len(data.bars) == 23 * 5
        for bar in data.bars:
            assert bar.total >= 1.0
        averages = dict(data.averages())
        assert averages["16,8,4,4+C+WDT"] < averages["16,0,0,0"]
        assert "averages:" in fig7.render(data)

    def test_single_cycle_benchmarks_starred(self):
        data = fig7.run(QUICK)
        by_bench = data.by_benchmark()
        # The tiny benchmarks complete within one power cycle (Figure 7's
        # asterisks) at small sizes.
        assert all(b.single_cycle for b in by_bench["randmath"])


class TestFig8:
    def test_u_shape_and_balance(self):
        # Short on-times make the U emerge clearly at small trace sizes —
        # the paper notes the tradeoff holds regardless of on-time.
        data = fig8.run(EvalSettings(size="small", avg_on_ms=20, seed=2), repeats=3)
        points = data.points
        combined = [p.combined for p in points]
        best = data.best()
        # U-shape: the ends are worse than the minimum.
        assert combined[0] > best.combined
        assert combined[-1] > best.combined
        # Checkpoint overhead decreases with the watchdog value.
        assert points[0].checkpoint > points[-1].checkpoint
        # Re-execution overhead grows with the watchdog value.
        assert points[-1].reexec > points[0].reexec
        assert str(data.analytic_optimum) in fig8.render(data)

    def test_ci_render_degenerate_intervals(self):
        """Zero-variance CI cells render ``determ.``, sub-precision cells
        ``<0.01%`` — no misleading 0.00% column."""
        data = fig8.Fig8Data(
            points=[
                fig8.Fig8Point(200, 0.10, 0.01, checkpoint_ci=0.0,
                               reexec_ci=2e-05),
                fig8.Fig8Point(400, 0.05, 0.02, checkpoint_ci=0.012,
                               reexec_ci=0.0),
            ],
            analytic_optimum=1000,
            seeds=5,
        )
        text = fig8.render(data)
        assert "determ." in text
        assert "<0.01%" in text
        assert "  1.20%" in text
        assert " 0.00% " not in text


class TestTable3:
    def test_ordering_matches_paper(self):
        rows = {r.approach: r for r in table3.run(QUICK)}
        assert rows["dino"].total_overhead is None  # not ported
        assert rows["mementos"].total_overhead > rows["hibernus"].total_overhead
        assert rows["clank"].total_overhead < rows["ratchet"].total_overhead
        assert rows["clank"].total_overhead < rows["hibernus++"].total_overhead
        text = table3.render(table3.run(QUICK))
        assert "not ported" in text and "architecture" in text


class TestTable4:
    def test_mixed_beats_wholly_nv(self):
        rows = table4.run(QUICK)
        mixed = {r.budget: r for r in rows if r.composition == "mixed" and r.system == "clank"}
        nv = {r.budget: r for r in rows if r.composition == "wholly-nv"}
        for budget in ("30", "<100", "<400"):
            assert mixed[budget].overhead <= nv[budget].overhead + 1e-9
        # DINO pays far more than mixed Clank (paper: 170% vs 3%).
        dino = next(r for r in rows if r.system == "dino")
        assert dino.overhead > mixed["<400"].overhead
        assert "dino" in table4.render(rows)

    def test_more_bits_never_hurt_much(self):
        rows = [r for r in table4.run(QUICK) if r.composition == "wholly-nv"]
        assert rows[0].overhead >= rows[-1].overhead
