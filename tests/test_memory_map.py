"""Unit tests for the memory map."""

import pytest

from repro.common.errors import ConfigError
from repro.mem.map import MemoryMap, Segment, default_memory_map


class TestSegment:
    def test_basic_properties(self):
        seg = Segment("data", 0x1000, 0x100)
        assert seg.end == 0x1100
        assert seg.contains(0x1000)
        assert seg.contains(0x10FF)
        assert not seg.contains(0x1100)

    def test_word_range(self):
        seg = Segment("data", 0x1000, 0x100)
        assert seg.word_range == (0x400, 0x440)

    def test_rejects_misaligned_base(self):
        with pytest.raises(ConfigError):
            Segment("x", 0x1002, 0x100)

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            Segment("x", 0x1000, 0)
        with pytest.raises(ConfigError):
            Segment("x", 0x1000, 10)


class TestMemoryMap:
    def test_default_map_has_all_segments(self, mmap):
        for name in ("text", "data", "heap", "stack", "mmio"):
            assert mmap.segment(name).name == name

    def test_requires_text_and_mmio(self):
        with pytest.raises(ConfigError):
            MemoryMap({"data": Segment("data", 0, 0x100)})

    def test_rejects_overlap(self):
        with pytest.raises(ConfigError):
            MemoryMap(
                {
                    "text": Segment("text", 0, 0x1000),
                    "mmio": Segment("mmio", 0x800, 0x1000),
                }
            )

    def test_segment_of(self, mmap):
        assert mmap.segment_of(0x0).name == "text"
        assert mmap.segment_of(0x2000_0000).name == "data"
        assert mmap.segment_of(0x9000_0000) is None

    def test_unknown_segment_raises(self, mmap):
        with pytest.raises(ConfigError):
            mmap.segment("bss")

    def test_outputs_are_mmio_or_unmapped(self, mmap):
        # Output-commit rule (Section 3.3): anything outside physical
        # memory, including MMIO, is an output.
        assert mmap.is_output(0x4000_0000)
        assert mmap.is_output(0xFFFF_0000)
        assert not mmap.is_output(0x2000_0000)
        assert not mmap.is_output(0x100)

    def test_text_word_range(self, mmap):
        lo, hi = mmap.text_word_range
        assert lo == 0
        assert hi == (128 * 1024) >> 2
