"""Watermark-family derivation must be bit-identical to the chain scan.

The equivalence grid builds every SectionMap twice — once with watermark
mode forced on (``REPRO_WATERMARK=1``) and once with the per-config
straight-line chain scan — and walks the failure-free chain plus sampled
mid-section restarts, asserting every derived section matches the
reference exactly across workloads x capacities x optimization combos
(including ``no_wf_overflow``, whose members derive with a fallback
proof) with the C kernel on and off.
"""

import itertools
import random

import pytest

from repro.core import cext
from repro.core.config import ClankConfig, PolicyOptimizations
from repro.eval.runner import pi_words_for
from repro.sim import sections, watermarks
from repro.sim.sections import (
    SEC_FORCED, SEC_OUTPUT, SEC_TEXT, SectionMap, VARIANT_DIRECT,
    VARIANT_FORCED_DONE, VARIANT_NORMAL,
)
from repro.workloads.cache import get_trace

#: Optimization combos covering every derive-time special case: none,
#: all five (no_wf_overflow + latest_checkpoint together), latest alone,
#: no_wf_overflow alone, and no_wf_overflow + latest.
_OPTS = (
    PolicyOptimizations.none(),
    PolicyOptimizations.all(),
    PolicyOptimizations(latest_checkpoint=True),
    PolicyOptimizations(no_wf_overflow=True),
    PolicyOptimizations(no_wf_overflow=True, latest_checkpoint=True),
    PolicyOptimizations(True, True, False, True, False),
)

#: Capacity points exercising W=0 (wf_zero families), A=0 (no APB),
#: B=0 (plain violation boundaries), and mid-grid values.
_CAPS = ((1, 0, 0, 0), (4, 4, 2, 2), (8, 1, 1, 4), (16, 8, 4, 0))


def _walk_and_compare(trace, config, pi_words, forced):
    """Walk both maps over the chain from 0 plus random restarts."""
    import os

    rng = random.Random(99)
    os.environ["REPRO_WATERMARK"] = "0"
    sections.clear_cache()
    ref = SectionMap(trace, config, pi_words, None, forced)
    os.environ["REPRO_WATERMARK"] = "1"
    sections.clear_cache()
    wm = SectionMap(trace, config, pi_words, None, forced)
    assert wm._family is not None
    n = ref.n
    queries = [(0, VARIANT_NORMAL)]
    seen = set()
    checked = 0
    while queries:
        s, v = queries.pop()
        if (s, v) in seen or s > n:
            continue
        seen.add((s, v))
        a = ref.section(s, v)
        b = wm.section(s, v)
        assert a == b, (trace.name, config, (s, v), a, b)
        checked += 1
        end, _cause, kind, _steps = a
        if end >= n:
            continue
        if kind == SEC_FORCED:
            queries.append((end, VARIANT_FORCED_DONE))
        elif kind == SEC_TEXT:
            queries.append((end, VARIANT_DIRECT))
        else:
            nxt = end + 1 if kind == SEC_OUTPUT else end
            queries.append((nxt, VARIANT_NORMAL))
        if end - s > 2:
            queries.append((rng.randrange(s + 1, end), VARIANT_NORMAL))
    assert checked > 0


@pytest.fixture(autouse=True)
def _restore_watermark_env(monkeypatch):
    monkeypatch.delenv("REPRO_WATERMARK", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    yield
    sections.clear_cache()
    cext.reset_for_tests()


@pytest.mark.parametrize("use_cext", ["1", "0"])
def test_equivalence_grid(monkeypatch, use_cext):
    monkeypatch.setenv("REPRO_CEXT", use_cext)
    cext.reset_for_tests()
    rng = random.Random(7)
    for wl in ("crc", "rc4"):
        trace = get_trace(wl, size="small")
        n = len(trace.accesses)
        pw = pi_words_for(trace)
        forced = frozenset(rng.sample(range(n), min(5, n)))
        for opts, caps in itertools.product(_OPTS, _CAPS):
            config = ClankConfig(*caps, optimizations=opts)
            _walk_and_compare(trace, config, None, None)
            _walk_and_compare(trace, config, pw, forced)


def test_nwf_fallback_is_exact(monkeypatch):
    """no_wf_overflow members derive with a per-section proof; sections
    at or past the first tolerated overflow fall back to the chain scan
    and still come out identical (covered by the grid) — here we assert
    the fallback path is actually exercised for a tiny WF."""
    monkeypatch.setenv("REPRO_WATERMARK", "1")
    sections.clear_cache()
    trace = get_trace("fft", size="small")
    config = ClankConfig(
        4, 1, 2, 2, optimizations=PolicyOptimizations(no_wf_overflow=True)
    )
    smap = SectionMap(trace, config)
    fam = smap._family
    assert fam is not None
    # Enumerate the whole failure-free chain; a W=1 config overflows
    # quickly, so at least one boundary must have used the fallback
    # (visible as chain-scan enumeration time or ingested rows).
    s, v = 0, VARIANT_NORMAL
    guard = 0
    while s < smap.n and guard < 100000:
        end, _, kind, _ = smap.section(s, v)
        if end >= smap.n:
            break
        if kind == SEC_FORCED:
            s, v = end, VARIANT_FORCED_DONE
        elif kind == SEC_TEXT:
            s, v = end, VARIANT_DIRECT
        else:
            s, v = (end + 1 if kind == SEC_OUTPUT else end), VARIANT_NORMAL
        guard += 1
    assert len(smap._sections) > 0


def test_family_gate_deactivates(monkeypatch):
    """A family that keeps scanning without record reuse turns itself
    off; SectionMaps then fall back to the chain scan (bit-identical,
    purely an economics gate)."""
    monkeypatch.setenv("REPRO_WATERMARK", "1")
    sections.clear_cache()
    trace = get_trace("crc", size="small")
    config = ClankConfig.from_tuple((8, 4, 2, 2))
    smap = SectionMap(trace, config)
    fam = smap._family
    assert fam is not None and fam.active
    fam._scans_n = watermarks._GATE_SCANS
    fam._derives_n = 0
    fam._scan(0, 1, (32, 32, 32, 32))
    assert not fam.active
    # With the family inactive the map still answers, via ingest.
    sec = smap.section(0, VARIANT_NORMAL)
    assert sec[0] >= 0


def test_stats_and_reset(monkeypatch):
    monkeypatch.setenv("REPRO_WATERMARK", "1")
    sections.clear_cache()
    watermarks.reset_stats()
    trace = get_trace("crc", size="small")
    config = ClankConfig.from_tuple((8, 4, 2, 2))
    smap = SectionMap(trace, config)
    smap.section(0, VARIANT_NORMAL)
    st = watermarks.stats()
    assert st["families"] >= 1
    assert st["scans"] >= 1
    assert st["scan_seconds"] > 0.0
    watermarks.reset_stats()
    assert watermarks.stats()["scans"] == 0


def test_default_is_off():
    """Without REPRO_WATERMARK=1 the chain scan remains the enumerator."""
    sections.clear_cache()
    trace = get_trace("crc", size="small")
    config = ClankConfig.from_tuple((8, 4, 2, 2))
    smap = SectionMap(trace, config)
    assert smap._family is None
