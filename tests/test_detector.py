"""Unit tests for the idempotency detector and every policy optimization."""

import pytest

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.core.detector import (
    CHECKPOINT,
    CHECKPOINT_THEN_WRITE,
    PROCEED,
    PROCEED_WBB,
    IdempotencyDetector,
)


def det(spec=(4, 4, 2, 0), opts=None, text=None):
    config = ClankConfig.from_tuple(spec, opts or PolicyOptimizations.none())
    return IdempotencyDetector(config, text)


class TestBasicDominance:
    def test_first_read_is_tracked(self):
        d = det()
        assert d.on_read(1) == (PROCEED, None)
        assert 1 in d.rf

    def test_first_write_is_tracked(self):
        d = det()
        assert d.on_write(1, 5, 0) == (PROCEED, None)
        assert 1 in d.wf

    def test_write_after_write_proceeds(self):
        d = det()
        d.on_write(1, 5, 0)
        assert d.on_write(1, 6, 5) == (PROCEED, None)

    def test_read_after_write_proceeds(self):
        d = det()
        d.on_write(1, 5, 0)
        assert d.on_read(1) == (PROCEED, None)
        assert 1 not in d.rf  # stays write-dominated

    def test_violation_without_wbb_checkpoints(self):
        d = det((4, 4, 0, 0))
        d.on_read(1)
        assert d.on_write(1, 5, 0) == (CHECKPOINT, "violation")

    def test_violation_with_wbb_is_buffered(self):
        d = det((4, 4, 2, 0))
        d.on_read(1)
        action, cause = d.on_write(1, 5, 0)
        assert action == PROCEED_WBB
        assert d.wbb_value(1) == 5

    def test_wbb_owned_address_reads_and_writes_in_buffer(self):
        d = det((4, 4, 2, 0))
        d.on_read(1)
        d.on_write(1, 5, 0)
        assert d.on_write(1, 9, 5) == (PROCEED_WBB, None)
        assert d.wbb_value(1) == 9
        assert d.on_read(1) == (PROCEED, None)

    def test_wbb_overflow_checkpoints(self):
        d = det((4, 4, 1, 0))
        d.on_read(1)
        d.on_read(2)
        d.on_write(1, 5, 0)
        assert d.on_write(2, 6, 0) == (CHECKPOINT, "wbb_full")


class TestBufferFullConditions:
    def test_rf_full_checkpoints(self):
        d = det((2, 4, 0, 0))
        d.on_read(1)
        d.on_read(2)
        assert d.on_read(3) == (CHECKPOINT, "rf_full")

    def test_wf_full_checkpoints_without_optimization(self):
        d = det((4, 1, 0, 0))
        d.on_write(1, 1, 0)
        assert d.on_write(2, 2, 0) == (CHECKPOINT, "wf_full")

    def test_no_wf_buffer_writes_untracked(self):
        # R-only configuration: first-writes pass untracked (pessimistic).
        d = det((2, 0, 0, 0))
        assert d.on_write(1, 1, 0) == (PROCEED, None)
        # A later read-then-write of the same address false-violates.
        assert d.on_read(1) == (PROCEED, None)
        assert d.on_write(1, 2, 1) == (CHECKPOINT, "violation")

    def test_apb_full_on_read_checkpoints(self):
        d = det((8, 0, 0, 1))
        d.on_read(0)  # prefix 0
        assert d.on_read(64) == (CHECKPOINT, "apb_full")

    def test_apb_shared_across_buffers(self):
        d = det((4, 4, 0, 1))
        d.on_read(0)
        # Write to the same prefix: no new prefix needed.
        assert d.on_write(1, 1, 0) == (PROCEED, None)

    def test_reset_section_clears_everything(self):
        d = det((2, 2, 2, 1))
        d.on_read(1)
        d.on_write(2, 1, 0)
        d.on_write(1, 3, 0)
        flushed = d.reset_section()
        assert flushed == {1: 3}
        assert d.occupancy() == {"rf": 0, "wf": 0, "wbb": 0, "apb": 0}

    def test_power_fail_discards_wbb(self):
        d = det((2, 2, 2, 0))
        d.on_read(1)
        d.on_write(1, 3, 0)
        d.power_fail()
        assert d.wbb_value(1) is None
        assert d.occupancy()["rf"] == 0


class TestIgnoreFalseWrites:
    OPT = PolicyOptimizations.only("ignore_false_writes")

    def test_false_violating_write_ignored(self):
        d = det((4, 4, 0, 0), self.OPT)
        d.on_read(1)
        # Writing back the same value is not a violation (3.2.1).
        assert d.on_write(1, 7, 7) == (PROCEED, None)

    def test_true_violating_write_still_detected(self):
        d = det((4, 4, 0, 0), self.OPT)
        d.on_read(1)
        assert d.on_write(1, 8, 7) == (CHECKPOINT, "violation")

    def test_false_first_write_still_enters_wf(self):
        # "The write still causes updates to the write buffer" (3.2.1).
        d = det((4, 4, 0, 0), self.OPT)
        d.on_write(1, 7, 7)
        assert 1 in d.wf


class TestRemoveDuplicates:
    OPT = PolicyOptimizations(remove_duplicates=True)

    def test_buffered_violation_evicts_rf_entry(self):
        d = det((2, 0, 2, 0), self.OPT)
        d.on_read(1)
        d.on_write(1, 5, 0)
        assert 1 not in d.rf  # freed for new addresses (3.2.2)
        assert 1 in d.wbb

    def test_without_opt_rf_entry_remains(self):
        d = det((2, 0, 2, 0), PolicyOptimizations.none())
        d.on_read(1)
        d.on_write(1, 5, 0)
        assert 1 in d.rf


class TestNoWfOverflow:
    OPT = PolicyOptimizations(no_wf_overflow=True)

    def test_wf_overflow_ignored(self):
        d = det((4, 1, 0, 0), self.OPT)
        d.on_write(1, 1, 0)
        # Overflowing write passes untracked instead of checkpointing.
        assert d.on_write(2, 2, 0) == (PROCEED, None)
        assert 2 not in d.wf

    def test_untracked_write_may_false_violate_later(self):
        d = det((4, 1, 0, 0), self.OPT)
        d.on_write(1, 1, 0)
        d.on_write(2, 2, 0)  # untracked
        d.on_read(2)  # false read-domination
        assert d.on_write(2, 3, 2) == (CHECKPOINT, "violation")


class TestIgnoreText:
    OPT = PolicyOptimizations(ignore_text=True)
    TEXT = (0, 0x1000)

    def test_text_reads_untracked(self):
        d = det((1, 0, 0, 0), self.OPT, self.TEXT)
        for addr in range(20):
            assert d.on_read(addr) == (PROCEED, None)
        assert len(d.rf) == 0

    def test_text_write_checkpoints_then_writes(self):
        # Self-modifying-code safety (3.2.4).
        d = det((4, 4, 0, 0), self.OPT, self.TEXT)
        assert d.on_write(5, 1, 0) == (CHECKPOINT_THEN_WRITE, "text_write")

    def test_non_text_tracked_normally(self):
        d = det((4, 4, 0, 0), self.OPT, self.TEXT)
        assert d.on_read(0x2000) == (PROCEED, None)
        assert 0x2000 in d.rf

    def test_without_opt_text_tracked_normally(self):
        d = det((4, 4, 0, 0), PolicyOptimizations.none(), self.TEXT)
        d.on_read(5)
        assert 5 in d.rf


class TestLatestCheckpoint:
    OPT = PolicyOptimizations(latest_checkpoint=True)

    def test_rf_full_enters_untracked_mode(self):
        d = det((1, 0, 0, 0), self.OPT)
        d.on_read(1)
        assert d.on_read(2) == (PROCEED, None)  # deferred, not a checkpoint
        assert d.untracked

    def test_untracked_reads_flow_freely(self):
        d = det((1, 0, 0, 0), self.OPT)
        d.on_read(1)
        d.on_read(2)
        for addr in range(10, 30):
            assert d.on_read(addr) == (PROCEED, None)

    def test_first_write_after_fill_checkpoints(self):
        d = det((1, 0, 0, 0), self.OPT)
        d.on_read(1)
        d.on_read(2)
        assert d.on_write(9, 1, 0) == (CHECKPOINT, "latest_write")

    def test_false_write_allowed_in_untracked_mode(self):
        opts = PolicyOptimizations(latest_checkpoint=True, ignore_false_writes=True)
        d = det((1, 0, 0, 0), opts)
        d.on_read(1)
        d.on_read(2)
        assert d.on_write(9, 3, 3) == (PROCEED, None)

    def test_reset_leaves_untracked_mode(self):
        d = det((1, 0, 0, 0), self.OPT)
        d.on_read(1)
        d.on_read(2)
        d.reset_section()
        assert not d.untracked


class TestSnapshotRestore:
    def test_roundtrip(self):
        d = det((2, 2, 2, 1), PolicyOptimizations.all(), (0, 10))
        d.on_read(100)
        d.on_write(101, 5, 0)
        d.on_write(100, 9, 0)
        state = d.snapshot()
        d.reset_section()
        d.restore(state)
        assert 101 in d.wf
        assert d.wbb_value(100) == 9

    def test_snapshot_is_immutable_copy(self):
        d = det((2, 2, 2, 0))
        d.on_read(1)
        state = d.snapshot()
        d.on_read(2)
        d.restore(state)
        assert 2 not in d.rf
