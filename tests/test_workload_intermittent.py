"""Dynamic verification of intermittent execution on every workload.

The paper dynamically verifies *every experimental trial* with the
reference-monitor check; here every workload runs through the policy
simulator with verification enabled across representative configurations,
policy settings, and power seeds.  A VerificationError anywhere means Clank
corrupted program semantics.
"""

import pytest

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.power.schedules import ExponentialPower, FixedPower
from repro.sim.simulator import simulate
from repro.workloads import get_trace, workload_names

CONFIGS = [(1, 0, 0, 0), (8, 4, 2, 0), (16, 8, 4, 4)]


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("spec", CONFIGS, ids=lambda s: "-".join(map(str, s)))
def test_workload_verifies_under_power_cycling(name, spec):
    trace = get_trace(name, size="small")
    result = simulate(
        trace,
        ClankConfig.from_tuple(spec),
        ExponentialPower(8000, seed=13),
        progress_watchdog="auto",
        verify=True,
    )
    assert result.verified
    assert result.useful_cycles == trace.total_cycles


@pytest.mark.parametrize("name", ["crc", "rc4", "qsort", "ds", "sha"])
def test_severe_power_cycling_still_verifies(name):
    # Fixed short on-times: heavy re-execution, many checkpoints.
    trace = get_trace(name, size="tiny")
    result = simulate(
        trace,
        ClankConfig.from_tuple((4, 2, 1, 0)),
        FixedPower(600),
        progress_watchdog=200,
        verify=True,
    )
    assert result.verified
    assert result.power_cycles > 1


@pytest.mark.parametrize(
    "opts", PolicyOptimizations.all_settings()[::5], ids=lambda o: o.label()
)
def test_policy_settings_verify_on_real_workload(opts):
    trace = get_trace("rc4", size="tiny")
    result = simulate(
        trace,
        ClankConfig.from_tuple((4, 2, 2, 2), opts),
        ExponentialPower(3000, seed=7),
        progress_watchdog="auto",
        verify=True,
    )
    assert result.verified


def test_compiler_marking_verifies():
    from repro.compiler import profile_program_idempotent

    trace = get_trace("crc", size="small")
    result = simulate(
        trace,
        ClankConfig.from_tuple((2, 1, 1, 1)),
        ExponentialPower(5000, seed=3),
        pi_words=profile_program_idempotent(trace),
        progress_watchdog="auto",
        verify=True,
    )
    assert result.verified


def test_mixed_volatility_ds_verifies():
    trace = get_trace("ds", size="small")
    vol = (trace.memory_map.word_range("stack"),)
    result = simulate(
        trace,
        ClankConfig.from_tuple((2, 1, 1, 0)),
        ExponentialPower(6000, seed=9),
        progress_watchdog="auto",
        perf_watchdog="auto",
        volatile_ranges=vol,
        verify=True,
    )
    assert result.verified
