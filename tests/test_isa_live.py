"""Full-system tests: the live Clank attachment on the Thumb ISS.

Every demo program runs across real power failures with real register
checkpointing and must end in exactly the continuous run's state — the
end-to-end recovery demonstration the FPGA prototype provides in the paper.
"""

import pytest

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.isa.assembler import assemble
from repro.isa.live import (
    LiveClankSystem,
    run_continuous,
    verify_against_continuous,
)
from repro.isa.programs import (
    DEMO_PROGRAMS,
    expected_bubble_sort,
    expected_crc16,
    expected_fib_memo,
    expected_strlen,
    expected_sum_array,
)
from repro.power.schedules import ContinuousPower, ExponentialPower, FixedPower


class TestContinuousOracle:
    def test_sum_array(self):
        prog = assemble(DEMO_PROGRAMS["sum_array"])
        mem, outs, _ = run_continuous(prog)
        assert mem.read_word(prog.symbols["total"] >> 2) == expected_sum_array()
        assert outs == [(0x4000_0000, expected_sum_array())]

    def test_bubble_sort(self):
        prog = assemble(DEMO_PROGRAMS["bubble_sort"])
        mem, _, _ = run_continuous(prog)
        base = prog.symbols["values"] >> 2
        assert [mem.read_word(base + i) for i in range(10)] == expected_bubble_sort()

    def test_crc16(self):
        prog = assemble(DEMO_PROGRAMS["crc16"])
        mem, _, _ = run_continuous(prog)
        assert mem.read_word(prog.symbols["result"] >> 2) == expected_crc16()

    def test_fib_memo(self):
        prog = assemble(DEMO_PROGRAMS["fib_memo"])
        mem, _, _ = run_continuous(prog)
        assert mem.read_word(prog.symbols["result"] >> 2) == expected_fib_memo()

    def test_strlen(self):
        prog = assemble(DEMO_PROGRAMS["strlen_call"])
        mem, _, _ = run_continuous(prog)
        assert mem.read_word(prog.symbols["len1"] >> 2) == expected_strlen()


class TestLiveIntermittent:
    @pytest.mark.parametrize("name", sorted(DEMO_PROGRAMS))
    @pytest.mark.parametrize("spec", [(1, 0, 0, 0), (8, 4, 2, 0), (16, 8, 4, 4)],
                             ids=lambda s: "-".join(map(str, s)))
    def test_program_survives_power_cycling(self, name, spec):
        prog = assemble(DEMO_PROGRAMS[name])
        system = LiveClankSystem(
            prog,
            ClankConfig.from_tuple(spec),
            ExponentialPower(1200, seed=17),
            progress_watchdog=400,
        )
        result = system.run()
        verify_against_continuous(prog, result)
        assert result.power_cycles >= 1

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_many_power_seeds(self, seed):
        prog = assemble(DEMO_PROGRAMS["crc16"])
        system = LiveClankSystem(
            prog,
            ClankConfig.from_tuple((4, 2, 1, 0)),
            ExponentialPower(900, seed=seed),
            progress_watchdog=300,
        )
        result = system.run()
        verify_against_continuous(prog, result)
        assert result.power_cycles > 1  # the run really was intermittent

    def test_continuous_power_needs_no_recovery(self):
        prog = assemble(DEMO_PROGRAMS["sum_array"])
        system = LiveClankSystem(
            prog, ClankConfig.from_tuple((16, 8, 4, 4)), ContinuousPower()
        )
        result = system.run()
        verify_against_continuous(prog, result)
        assert result.power_cycles == 1

    def test_outputs_commit_with_checkpoints(self):
        prog = assemble(DEMO_PROGRAMS["sum_array"])
        system = LiveClankSystem(
            prog, ClankConfig.from_tuple((8, 4, 2, 0)), ContinuousPower()
        )
        result = system.run()
        assert result.checkpoints.get("output") == 2
        assert result.outputs == [(0x4000_0000, expected_sum_array())]

    def test_rmw_program_checkpoints_on_violations(self):
        prog = assemble(DEMO_PROGRAMS["bubble_sort"])
        system = LiveClankSystem(
            prog,
            ClankConfig.from_tuple((8, 4, 2, 0), PolicyOptimizations.all()),
            ContinuousPower(),
        )
        result = system.run()
        assert result.checkpoints.get("wbb_full", 0) > 0

    def test_performance_watchdog_in_live_system(self):
        prog = assemble(DEMO_PROGRAMS["crc16"])
        system = LiveClankSystem(
            prog,
            ClankConfig.infinite(),
            ContinuousPower(),
            perf_watchdog=300,
        )
        result = system.run()
        verify_against_continuous(prog, result)
        assert result.checkpoints.get("perf_wdt", 0) > 0

    def test_progress_watchdog_rescues_fixed_short_power(self):
        # crc16 cannot finish in 700 cycles; the Progress Watchdog must
        # break it into completable sections.
        prog = assemble(DEMO_PROGRAMS["crc16"])
        system = LiveClankSystem(
            prog,
            ClankConfig.from_tuple((16, 8, 4, 4)),
            FixedPower(700),
            progress_watchdog=400,
        )
        result = system.run()
        verify_against_continuous(prog, result)
        assert result.checkpoints.get("progress_wdt", 0) > 0

    def test_instructions_reexecuted_under_power_loss(self):
        prog = assemble(DEMO_PROGRAMS["fib_memo"])
        continuous = LiveClankSystem(
            prog, ClankConfig.from_tuple((16, 8, 4, 4)), ContinuousPower()
        ).run()
        intermittent = LiveClankSystem(
            prog,
            ClankConfig.from_tuple((16, 8, 4, 4)),
            FixedPower(300),
            progress_watchdog=150,
        ).run()
        verify_against_continuous(prog, intermittent)
        assert intermittent.instructions > continuous.instructions
