"""Tests for the prior-approach baseline models (Tables 3-4)."""

import pytest

from repro.baselines.models import (
    DinoBaseline,
    HibernusBaseline,
    HibernusPlusPlusBaseline,
    MementosBaseline,
    RatchetBaseline,
)
from repro.power.schedules import ContinuousPower, ExponentialPower, FixedPower
from repro.workloads import get_trace

from tests.conftest import rmw_trace, stream_trace


def sched():
    return ExponentialPower(100_000, seed=7)


class TestMementos:
    def test_overhead_exceeds_energy_floor(self):
        res = MementosBaseline().run(get_trace("fft", size="small"), sched())
        # The ADC tax alone is 40% (Section 2.1).
        assert res.total_overhead > 1.40
        assert res.checkpoints > 0

    def test_deterministic(self):
        trace = get_trace("crc", size="small")
        a = MementosBaseline().run(trace, ExponentialPower(50_000, seed=3))
        b = MementosBaseline().run(trace, ExponentialPower(50_000, seed=3))
        assert a.total_overhead == b.total_overhead


class TestHibernus:
    def test_one_hibernate_per_power_cycle(self):
        trace = get_trace("fft", size="small")
        res = HibernusBaseline().run(trace, FixedPower(150_000))
        # checkpoints == power cycles that did not finish the program.
        assert res.checkpoints == res.power_cycles - 1

    def test_plus_plus_is_cheaper(self):
        trace = get_trace("fft", size="small")
        h = HibernusBaseline().run(trace, sched())
        hpp = HibernusPlusPlusBaseline().run(trace, sched())
        assert hpp.total_overhead < h.total_overhead

    def test_run_time_overhead_components(self):
        trace = get_trace("crc", size="small")
        res = HibernusBaseline().run(trace, sched())
        assert res.run_time_overhead >= 0
        assert res.total_overhead == pytest.approx(
            1 + res.run_time_overhead + res.energy_fraction
        )


class TestRatchet:
    def test_sections_bounded_statically(self):
        trace = get_trace("fft", size="small")
        res = RatchetBaseline(max_section_cycles=120).run(trace, sched())
        # Roughly one checkpoint per cap's worth of cycles.
        assert res.checkpoints >= trace.total_cycles // 400

    def test_tighter_cap_costs_more(self):
        trace = get_trace("crc", size="small")
        loose = RatchetBaseline(max_section_cycles=400).run(trace, sched())
        tight = RatchetBaseline(max_section_cycles=60).run(trace, sched())
        assert tight.run_time_overhead > loose.run_time_overhead

    def test_no_energy_tax(self):
        res = RatchetBaseline().run(get_trace("crc", size="tiny"), sched())
        assert res.energy_fraction == 0.0


class TestDino:
    def test_versioning_scales_with_task_writes(self):
        trace = get_trace("ds", size="small")
        res = DinoBaseline().run(trace, sched())
        assert res.checkpoints > 0
        assert res.checkpoint_cycles > res.checkpoints * 50  # versioned data

    def test_continuous_power_still_pays_versioning(self):
        trace = get_trace("ds", size="tiny")
        res = DinoBaseline().run(trace, ContinuousPower())
        assert res.reexec_cycles == 0
        assert res.checkpoint_cycles > 0


class TestTable3Ordering:
    def test_clank_beats_every_baseline_on_fft(self):
        from repro.compiler import profile_program_idempotent
        from repro.core.config import ClankConfig
        from repro.hw import hardware_overhead
        from repro.sim.simulator import simulate

        trace = get_trace("fft", size="small")
        baseline_overheads = []
        for baseline in (
            MementosBaseline(),
            HibernusBaseline(),
            HibernusPlusPlusBaseline(),
            RatchetBaseline(),
        ):
            baseline_overheads.append(baseline.run(trace, sched()).total_overhead)
        cfg = ClankConfig.from_tuple((16, 8, 4, 4))
        clank = simulate(
            trace, cfg, sched(),
            pi_words=profile_program_idempotent(trace),
            perf_watchdog="auto", progress_watchdog="auto", verify=False,
        )
        hw = hardware_overhead(cfg, watchdogs=True).power_fraction
        # The paper's headline: Clank is an order of magnitude better than
        # the field on total overhead (Table 3).
        assert clank.total_overhead(hw) < min(baseline_overheads)
