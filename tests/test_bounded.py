"""Bounded exhaustive verification of the detector (Section 5).

These tests are the reproduction's analog of the paper's bounded model
checking runs: every access sequence up to the bound, under every placement
of up to two power failures, driven through the *real* detector — checked
against the continuous oracle.  The benchmark harness runs larger bounds;
here the bounds are sized for test time.
"""

import pytest

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.verify.bounded import (
    BoundedChecker,
    all_sequences,
    check_against_monitor,
)

#: Configurations that exercise every buffer/full-condition path.
CONFIGS = [
    (1, 0, 0, 0),
    (2, 1, 0, 0),
    (1, 1, 1, 0),
    (2, 1, 1, 1),
]

SETTINGS = [
    PolicyOptimizations.none(),
    PolicyOptimizations.all(),
    PolicyOptimizations.only("ignore_false_writes"),
    PolicyOptimizations.only("remove_duplicates"),
    PolicyOptimizations.only("no_wf_overflow"),
    PolicyOptimizations.only("latest_checkpoint"),
]


class TestBoundedChecker:
    @pytest.mark.parametrize("spec", CONFIGS)
    @pytest.mark.parametrize("opts", SETTINGS, ids=lambda o: o.label())
    def test_all_sequences_all_failures(self, spec, opts):
        config = ClankConfig.from_tuple(spec, opts)
        report = BoundedChecker(config, max_failures=2).check_all(3)
        assert report.sequences == 6 + 36 + 216
        assert report.executions > report.sequences  # failures explored

    def test_length_four_spot_check(self):
        # One deeper run on the richest configuration.
        config = ClankConfig.from_tuple((2, 1, 1, 1), PolicyOptimizations.all())
        report = BoundedChecker(config, max_failures=1).check_all(4)
        assert report.executions > 0

    def test_ignore_text_path(self):
        # Text writes use the checkpoint-then-write path; include a text
        # word in the alphabet to cover it.
        config = ClankConfig.from_tuple(
            (2, 1, 1, 0), PolicyOptimizations.only("ignore_text")
        )
        checker = BoundedChecker(config, max_failures=1, text_words=[0x10])
        for seq in all_sequences(3, addrs=(0x10, 0x100), values=(0, 1)):
            checker.check_sequence(seq)

    def test_sequence_counting(self):
        seqs = list(all_sequences(2, addrs=(1, 2), values=(0, 1)))
        # Alphabet: 2 reads + 4 writes = 6 symbols -> 36 pairs.
        assert len(seqs) == 36


class TestMonitorLayering:
    """The detector never lets a true violation commit directly to NV —
    the paper's implementation-vs-reference-monitor proof obligation."""

    @pytest.mark.parametrize("spec", CONFIGS)
    @pytest.mark.parametrize("opts", SETTINGS, ids=lambda o: o.label())
    def test_layering_over_all_sequences(self, spec, opts):
        config = ClankConfig.from_tuple(spec, opts)
        for seq in all_sequences(4):
            check_against_monitor(seq, config)
