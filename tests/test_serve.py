"""Sweep-as-a-service: the contracts documented in :mod:`repro.serve`.

Byte identity (served results == local results on a config grid, batch
jobs included), the dedupe funnel (single-flight coalescing simulates a
duplicate key once; repeat batches are answered from memory/disk
without re-simulating), the remote read-through tier (peer hit,
write-through, clean miss, and corrupt/absent-peer degradation to a
plain miss), the ledger's ``engine="served"`` reconciliation, and the
``--verify`` refusal on both sides of the wire.

Servers run in-process on a background event-loop thread
(:func:`repro.serve.start_in_background`); the CI loopback job covers
the separate-process path.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro.cache as artifact_cache
from repro.cache.store import CacheStore
from repro.eval import parallel
from repro.eval.parallel import SimJob, result_key, run_jobs
from repro.eval.settings import EvalSettings
from repro.obs import telemetry
from repro.serve import (
    ServeClient, install, start_in_background, uninstall,
)
from repro.serve.client import ServeError
from repro.serve.jsonio import (
    job_from_dict, job_to_dict, settings_from_dict, settings_to_dict,
)
from repro.sim import sections

SETTINGS = EvalSettings(size="tiny", verify=False, profile=False)

#: A small grid with real variety: two workloads, two configs, a
#: duplicate salt, a compiler job, and a batched seed-repeat job.
GRID = [
    SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=0),
    SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=1),
    SimJob(workload="rc4", config=(4, 2, 1, 0), size="tiny", salt=0),
    SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=0,
           use_compiler=True),
    SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=2,
           n_seeds=3, seed_stride=1),
]


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """No ambient store, no leaked SERVED_EXECUTOR, clean section cache."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_REMOTE", raising=False)
    artifact_cache.reset_for_tests()
    sections.clear_cache()
    uninstall()
    yield
    uninstall()
    sections.clear_cache()
    artifact_cache.reset_for_tests()
    artifact_cache.reset_stats()


@pytest.fixture()
def server():
    handle = start_in_background(jobs=1)
    yield handle
    handle.stop()


def _dicts(results):
    out = []
    for r in results:
        if r is None:
            out.append(None)
        elif hasattr(r, "column"):  # BatchResult
            out.append(r.to_dict())
        else:
            out.append(r.to_dict(include_derived=False))
    return out


class TestJsonio:
    def test_job_round_trip_grid(self):
        for job in GRID:
            encoded = json.loads(json.dumps(job_to_dict(job)))
            assert job_from_dict(encoded) == job

    def test_job_round_trip_with_opts(self):
        from repro.core.config import PolicyOptimizations

        job = SimJob(
            workload="crc", config=(16, 8, 4, 2),
            opts=PolicyOptimizations.none(), prefix_low_bits=4,
            volatile_segments=("stack",),
        )
        encoded = json.loads(json.dumps(job_to_dict(job)))
        assert job_from_dict(encoded) == job

    def test_settings_round_trip(self):
        encoded = json.loads(json.dumps(settings_to_dict(SETTINGS)))
        assert settings_from_dict(encoded) == SETTINGS

    def test_unknown_fields_rejected(self):
        bad = job_to_dict(GRID[0])
        bad["surprise"] = 1
        with pytest.raises(ValueError, match="unknown SimJob"):
            job_from_dict(bad)
        bad_settings = settings_to_dict(SETTINGS)
        bad_settings["surprise"] = 1
        with pytest.raises(ValueError, match="unknown EvalSettings"):
            settings_from_dict(bad_settings)


class TestServedByteIdentity:
    def test_grid_matches_local(self, server):
        local = run_jobs(GRID, SETTINGS, 1)
        served = ServeClient(server.url).run_jobs(GRID, SETTINGS)
        assert _dicts(served) == _dicts(local)

    def test_run_jobs_routes_through_installed_client(self, server):
        client = ServeClient(server.url)
        install(client)
        served = run_jobs(GRID, SETTINGS, 1)
        uninstall()
        local = run_jobs(GRID, SETTINGS, 1)
        assert _dicts(served) == _dicts(local)
        assert client.jobs_served == len(GRID)

    def test_verify_batches_never_served(self, server):
        """The client-side guard: run_jobs bypasses SERVED_EXECUTOR under
        settings.verify, so verification executes in this process."""
        client = ServeClient(server.url)
        install(client)
        verify = EvalSettings(size="tiny", verify=True, profile=False)
        results = run_jobs(GRID[:1], verify, 1)
        assert results[0] is not None and results[0].verified
        assert client.jobs_served == 0

    def test_server_refuses_verify_batches(self, server):
        """The server-side guard: a verify batch is rejected with a 400
        even from a client that skipped the local guard."""
        client = ServeClient(server.url)
        verify = EvalSettings(size="tiny", verify=True, profile=False)
        with pytest.raises(ServeError, match="rejected batch \\(400\\)"):
            client._stream_batch(
                {
                    "settings": settings_to_dict(verify),
                    "jobs": [job_to_dict(GRID[0])],
                },
                1,
            )


class TestDedupeFunnel:
    def test_single_flight_within_batch(self, server):
        jobs = [
            SimJob(workload="crc", config=(8, 4, 2, 0), size="tiny", salt=7)
        ] * 4
        client = ServeClient(server.url)
        results = client.run_jobs(jobs, SETTINGS)
        assert _dicts(results) == _dicts(run_jobs(jobs, SETTINGS, 1))
        tiers = server.stats()["server"]["tiers"]
        assert tiers["computed"] == 1
        assert tiers["coalesced"] == 3

    def test_duplicate_keys_simulate_once_across_clients(self, server):
        """Concurrent clients posting the same key cost one simulation,
        whichever tier (coalesced or memory) answers the later one."""
        job = SimJob(workload="rc4", config=(8, 4, 2, 0), size="tiny", salt=9)
        outcomes = [None, None]

        def _post(slot):
            outcomes[slot] = ServeClient(server.url).run_jobs([job], SETTINGS)

        threads = [
            threading.Thread(target=_post, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert _dicts(outcomes[0]) == _dicts(outcomes[1])
        tiers = server.stats()["server"]["tiers"]
        assert tiers["computed"] == 1
        assert tiers["coalesced"] + tiers["memory"] == 1

    def test_repeat_batch_never_resimulates(self, server):
        client = ServeClient(server.url)
        first = client.run_jobs(GRID, SETTINGS)
        repeat = ServeClient(server.url)
        second = repeat.run_jobs(GRID, SETTINGS)
        assert _dicts(first) == _dicts(second)
        assert repeat.tier_counts["computed"] == 0
        assert repeat.tier_counts["memory"] == len(GRID)

    def test_memoryless_server_uses_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.reset_for_tests()
        handle = start_in_background(jobs=1, memory_entries=0)
        try:
            client = ServeClient(handle.url)
            client.run_jobs(GRID[:2], SETTINGS)
            repeat = ServeClient(handle.url)
            repeat.run_jobs(GRID[:2], SETTINGS)
            assert repeat.tier_counts["computed"] == 0
            assert repeat.tier_counts["disk"] == 2
        finally:
            handle.stop()

    def test_job_error_reported_and_server_survives(self, server):
        client = ServeClient(server.url)
        bad = SimJob(workload="no-such-workload", config=(8, 4, 2, 0),
                     size="tiny")
        with pytest.raises(ServeError, match="server failed job"):
            client.run_jobs([bad], SETTINGS)
        assert server.stats()["server"]["errors"] == 1
        ok = ServeClient(server.url).run_jobs(GRID[:1], SETTINGS)
        assert _dicts(ok) == _dicts(run_jobs(GRID[:1], SETTINGS, 1))


class TestRemoteTier:
    def _seed_peer_store(self, monkeypatch, path):
        """A store with one real result entry, served by a peer server."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
        artifact_cache.reset_for_tests()
        job = GRID[0]
        parallel.execute_job(job, SETTINGS)
        artifact_cache.persist_caches()
        kind, key = result_key(job, SETTINGS)
        assert artifact_cache.store().get(kind, key) is not None
        return kind, key

    def test_read_through_hit_and_write_through(
        self, tmp_path, monkeypatch
    ):
        kind, key = self._seed_peer_store(monkeypatch, tmp_path / "peer")
        peer = start_in_background(jobs=1)
        try:
            local = CacheStore(
                str(tmp_path / "local"), 1 << 30, remote=peer.url
            )
            obj = local.get(kind, key)
            assert isinstance(obj, dict)
            assert local.remote_hits == 1
            # Write-through: the same key is now a local file hit.
            again = local.get(kind, key)
            assert again == obj
            assert local.hits == 1 and local.remote_hits == 1
        finally:
            peer.stop()

    def test_remote_miss_is_clean(self, tmp_path, monkeypatch):
        kind, key = self._seed_peer_store(monkeypatch, tmp_path / "peer")
        peer = start_in_background(jobs=1)
        try:
            local = CacheStore(
                str(tmp_path / "local"), 1 << 30, remote=peer.url
            )
            assert local.get(kind, "f" * 64) is None
            assert local.remote_misses == 1 and local.remote_errors == 0
        finally:
            peer.stop()

    def test_corrupt_remote_degrades(self, tmp_path, monkeypatch):
        kind, key = self._seed_peer_store(monkeypatch, tmp_path / "peer")
        with open(artifact_cache.store().raw_path(kind, key), "wb") as fh:
            fh.write(b"not a pickle")
        peer = start_in_background(jobs=1)
        try:
            local = CacheStore(
                str(tmp_path / "local"), 1 << 30, remote=peer.url
            )
            assert local.get(kind, key) is None
            assert local.remote_errors == 1 and local.remote_hits == 0
        finally:
            peer.stop()

    def test_absent_remote_degrades(self, tmp_path):
        local = CacheStore(
            str(tmp_path), 1 << 30, remote="http://127.0.0.1:9",
            remote_timeout=0.2,
        )
        assert local.get("result", "a" * 64) is None
        assert local.remote_errors == 1

    def test_artifact_endpoint_validates_path(self, server):
        for bad in ("/artifact/result/zz", "/artifact/../x/" + "a" * 64):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + bad, timeout=10)
            assert err.value.code == 404


class TestLedgerReconciliation:
    def test_served_rows_carry_engine_and_tier(self, server):
        ledger = telemetry.LEDGER
        ledger.reset()
        ledger.enable()
        try:
            client = ServeClient(server.url)
            client.run_jobs(GRID, SETTINGS)
            client.run_jobs(GRID, SETTINGS)
        finally:
            ledger.disable()
        records = ledger.records
        assert len(records) == 2 * len(GRID)
        assert {r.engine for r in records} == {telemetry.ENGINE_SERVED}
        # Row-weighted totals reconcile: the batch job carries its rows.
        assert sum(r.rows for r in records) == 2 * sum(
            max(1, j.n_seeds) for j in GRID
        )
        first, second = records[: len(GRID)], records[len(GRID):]
        assert all(r.result_cache in ("computed", "coalesced", "memory")
                   for r in first)
        assert {r.result_cache for r in second} == {"memory"}
        # The deterministic projection pairs up exactly, tier aside.
        for a, b in zip(first, second):
            da, db = a.stable_dict(), b.stable_dict()
            for d in (da, db):
                d.pop("result_cache")
                d.pop("index")
            assert da == db


class TestStatsEndpoint:
    def test_stats_shape(self, server):
        ServeClient(server.url).run_jobs(GRID[:2], SETTINGS)
        snap = server.stats()
        assert snap["server"]["jobs"] == 2
        assert snap["server"]["batches"] == 1
        assert set(snap["server"]["tiers"]) == {
            "memory", "coalesced", "disk", "remote", "computed"
        }
        assert "hits" in snap["cache"] and "remote_hits" in snap["cache"]

    def test_healthz(self, server):
        assert ServeClient(server.url).healthz()
        assert not ServeClient("http://127.0.0.1:9", timeout=0.2).healthz()

    def test_metrics_endpoint_parses_and_reconciles(self, server):
        """/metrics is valid Prometheus text whose per-tier resolve
        histogram totals exactly the jobs the server answered."""
        jobs = GRID[:3] + GRID[:3]  # repeats exercise a second tier
        ServeClient(server.url).run_jobs(jobs, SETTINGS)
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=10
        ) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            text = resp.read().decode("utf-8")

        series = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            series[name] = float(value)

        resolve_counts = {
            name: v for name, v in series.items()
            if name.startswith("repro_resolve_seconds_count")
        }
        assert sum(resolve_counts.values()) == len(jobs)
        assert series['repro_http_requests_total'
                      '{endpoint="/jobs",status="200"}'] >= 1
        assert series['repro_http_request_seconds_count'
                      '{endpoint="/jobs"}'] >= 1
        # Cumulative buckets: each tier's +Inf bucket equals its _count.
        for name, v in series.items():
            if 'le="+Inf"' in name and name.startswith(
                    "repro_resolve_seconds_bucket"):
                count_name = name.replace("_bucket", "_count").replace(
                    ',le="+Inf"', "").replace('le="+Inf"', "")
                assert series[count_name] == v
        # The cache stats ride along as unlabeled extra counters.
        assert "repro_cache_hits" in series
