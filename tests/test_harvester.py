"""Tests for the harvester power-profile models."""

import pytest

from repro.common.errors import ConfigError
from repro.power.harvester import MarkovPower, RfHarvesterPower, SolarHarvesterPower


class TestRfHarvester:
    def test_deterministic_and_resettable(self):
        a = RfHarvesterPower(seed=3)
        first = [a.next_on_time() for _ in range(10)]
        a.reset()
        assert [a.next_on_time() for _ in range(10)] == first

    def test_closer_is_longer(self):
        near = RfHarvesterPower(min_m=0.5, max_m=0.6, seed=1)
        far = RfHarvesterPower(min_m=2.8, max_m=3.0, seed=1)
        n = sum(near.next_on_time() for _ in range(300))
        f = sum(far.next_on_time() for _ in range(300))
        assert n > 5 * f

    def test_mean_formula(self):
        sched = RfHarvesterPower(base_cycles=10_000, min_m=1.0, max_m=2.0, seed=0)
        samples = [sched.next_on_time() for _ in range(6000)]
        assert sum(samples) / len(samples) == pytest.approx(
            sched.mean_on_time, rel=0.15
        )

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            RfHarvesterPower(base_cycles=0)
        with pytest.raises(ConfigError):
            RfHarvesterPower(min_m=3.0, max_m=1.0)


class TestSolarHarvester:
    def test_envelope_cycles_through_day(self):
        sched = SolarHarvesterPower(peak_cycles=100_000, floor_cycles=100,
                                    period=20, seed=4)
        # Average over noon ticks >> average over midnight ticks.
        samples = [sched.next_on_time() for _ in range(400)]
        noon = [samples[i] for i in range(len(samples)) if i % 20 == 10]
        midnight = [samples[i] for i in range(len(samples)) if i % 20 == 0]
        assert sum(noon) / len(noon) > 5 * sum(midnight) / len(midnight)

    def test_reset_restores_phase(self):
        sched = SolarHarvesterPower(seed=1)
        first = [sched.next_on_time() for _ in range(7)]
        sched.reset()
        assert [sched.next_on_time() for _ in range(7)] == first

    def test_mean(self):
        sched = SolarHarvesterPower(peak_cycles=10_000, floor_cycles=2_000)
        assert sched.mean_on_time == 6_000

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            SolarHarvesterPower(peak_cycles=100, floor_cycles=200)


class TestMarkovPower:
    def test_produces_bursts_of_both_regimes(self):
        sched = MarkovPower(good_mean=50_000, bad_mean=200,
                            p_good_to_bad=0.2, p_bad_to_good=0.2, seed=6)
        samples = [sched.next_on_time() for _ in range(500)]
        assert any(s > 20_000 for s in samples)
        assert any(s < 500 for s in samples)

    def test_stationary_mean(self):
        sched = MarkovPower(good_mean=10_000, bad_mean=1_000,
                            p_good_to_bad=0.5, p_bad_to_good=0.5, seed=2)
        assert sched.mean_on_time == pytest.approx(5_500)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigError):
            MarkovPower(p_good_to_bad=0.0)


class TestHarvestersDriveTheSimulator:
    @pytest.mark.parametrize(
        "schedule",
        [
            RfHarvesterPower(base_cycles=20_000, seed=8),
            SolarHarvesterPower(peak_cycles=60_000, floor_cycles=800, seed=8),
            MarkovPower(good_mean=40_000, bad_mean=900, seed=8),
        ],
        ids=["rf", "solar", "markov"],
    )
    def test_clank_verifies_under_every_profile(self, schedule):
        from repro.core.config import ClankConfig
        from repro.sim.simulator import simulate
        from repro.workloads import get_trace

        trace = get_trace("ds", size="tiny")
        result = simulate(
            trace,
            ClankConfig.from_tuple((8, 4, 2, 0)),
            schedule,
            progress_watchdog="auto",
            verify=True,
        )
        assert result.verified
