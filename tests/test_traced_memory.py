"""Unit tests for the instrumented TracedMemory."""

import pytest

from repro.common.errors import MemoryError_
from repro.mem.traced import LOAD_CYCLES, MUL_CYCLES, STORE_CYCLES, TracedMemory
from repro.trace.access import READ, WRITE


def fresh(name="t"):
    return TracedMemory(name, compute_overhead=2)


class TestAllocation:
    def test_alloc_bumps_within_segment(self):
        mem = fresh()
        a = mem.alloc(16, segment="data")
        b = mem.alloc(16, segment="data")
        assert b == a + 16
        assert mem.memory_map.segment_of(a).name == "data"

    def test_alloc_alignment(self):
        mem = fresh()
        mem.alloc(3, segment="heap", align=1)
        b = mem.alloc(4, segment="heap", align=8)
        assert b % 8 == 0

    def test_alloc_exhaustion_raises(self):
        mem = fresh()
        with pytest.raises(MemoryError_):
            mem.alloc(1 << 30, segment="data")

    def test_text_alloc_tracks_usage(self):
        mem = fresh()
        mem.alloc(100, segment="text")
        assert mem.text_bytes_used() >= 100


class TestTracing:
    def test_load_store_roundtrip(self):
        mem = fresh()
        a = mem.alloc(8)
        mem.sw(a, 0x12345678)
        assert mem.lw(a) == 0x12345678
        assert mem.lb(a) == 0x78
        assert mem.lh(a + 2) == 0x1234

    def test_trace_records_word_values(self):
        mem = fresh()
        a = mem.alloc(4)
        mem.sb(a, 0xAA)
        trace = mem.finish()
        assert trace.accesses[0].kind == WRITE
        # Sub-word store recorded as the full resulting word.
        assert trace.accesses[0].value == 0xAA

    def test_cycle_accounting(self):
        mem = fresh()
        a = mem.alloc(4)
        mem.tick(10)
        mem.sw(a, 1)
        mem.lw(a)
        trace = mem.finish()
        assert trace.accesses[0].cycles == 10 + STORE_CYCLES + 2
        assert trace.accesses[1].cycles == LOAD_CYCLES + 2

    def test_mul_tick(self):
        mem = fresh()
        a = mem.alloc(4)
        mem.mul_tick()
        mem.sw(a, 1)
        assert mem.finish().accesses[0].cycles == MUL_CYCLES + STORE_CYCLES + 2

    def test_float_ticks(self):
        mem = fresh()
        a = mem.alloc(4)
        mem.fmul_tick(2)
        mem.fadd_tick(3)
        mem.sw(a, 1)
        assert mem.finish().accesses[0].cycles == 2 * 50 + 3 * 30 + STORE_CYCLES + 2

    def test_initial_image_captures_preaccess_values(self):
        mem = fresh()
        a = mem.alloc(8)
        mem.init_words(a, [7, 9])
        assert mem.lw(a) == 7
        mem.sw(a + 4, 1)
        trace = mem.finish()
        assert trace.initial_image[a >> 2] == 7
        assert trace.initial_image[(a >> 2) + 1] == 9

    def test_init_after_access_rejected(self):
        # Silent re-initialization of live memory would poison the trace.
        mem = fresh()
        a = mem.alloc(4)
        mem.sw(a, 1)
        with pytest.raises(MemoryError_):
            mem.init_words(a, [2])
        with pytest.raises(MemoryError_):
            mem.init_bytes(a, b"\x01")

    def test_misaligned_access_rejected(self):
        mem = fresh()
        a = mem.alloc(8)
        with pytest.raises(MemoryError_):
            mem.lw(a + 2)
        with pytest.raises(MemoryError_):
            mem.lh(a + 1)

    def test_finish_twice_rejected(self):
        mem = fresh()
        mem.finish()
        with pytest.raises(MemoryError_):
            mem.finish()

    def test_markers(self):
        mem = fresh()
        a = mem.alloc(4)
        mem.call("f")
        mem.sw(a, 1)
        mem.ret("f")
        trace = mem.finish()
        assert [(m.kind, m.index) for m in trace.markers] == [("call", 0), ("ret", 1)]

    def test_out_writes_mmio(self):
        mem = fresh()
        mem.out(0, 0xCAFE)
        trace = mem.finish()
        acc = trace.accesses[0]
        assert trace.memory_map.is_output(acc.waddr << 2)

    def test_out_port_range_checked(self):
        mem = fresh()
        with pytest.raises(MemoryError_):
            mem.out(1 << 20, 0)

    def test_bulk_helpers(self):
        mem = fresh()
        a = mem.alloc(16)
        mem.store_words(a, [1, 2, 3, 4])
        assert mem.load_words(a, 4) == [1, 2, 3, 4]
        b = mem.alloc(4)
        mem.store_bytes(b, b"\x01\x02")
        assert mem.lb(b + 1) == 2

    def test_trace_validates(self):
        mem = fresh()
        a = mem.alloc(16)
        mem.init_words(a, [5, 6, 7, 8])
        total = sum(mem.load_words(a, 4))
        mem.sw(a, total)
        trace = mem.finish(checksum=total)
        trace.validate()
        assert trace.checksum == total
