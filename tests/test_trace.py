"""Unit tests for Trace, Access, and trace statistics."""

import pytest

from repro.common.errors import TraceError
from repro.trace.access import READ, WRITE, Access, kind_name
from repro.trace.stats import compute_stats
from repro.trace.trace import Trace

from tests.conftest import DATA_WORD, make_trace, rmw_trace, stream_trace


class TestAccess:
    def test_repr_and_names(self):
        acc = Access(READ, 0x10, 5, 4)
        assert "R" in repr(acc)
        assert kind_name(READ) == "R"
        assert kind_name(WRITE) == "W"

    def test_equality_and_hash(self):
        a = Access(READ, 1, 2, 3)
        b = Access(READ, 1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Access(WRITE, 1, 2, 3)


class TestTrace:
    def test_total_cycles(self):
        trace = make_trace([(WRITE, 0, 1), (READ, 0)], cycles=4)
        assert trace.total_cycles == 8

    def test_final_memory_applies_writes(self):
        trace = make_trace([(WRITE, 0, 5), (WRITE, 0, 9), (WRITE, 1, 3)])
        final = trace.final_memory()
        assert final[DATA_WORD] == 9
        assert final[DATA_WORD + 1] == 3

    def test_validate_accepts_consistent(self):
        rmw_trace(50).validate()
        stream_trace(50).validate()

    def test_validate_rejects_wrong_read_value(self):
        trace = make_trace([(WRITE, 0, 5)])
        trace.accesses.append(Access(READ, DATA_WORD, 6, 4))
        with pytest.raises(TraceError):
            trace.validate()

    def test_validate_rejects_missing_initial(self):
        trace = Trace("bad", [Access(READ, 0x999, 0, 4)], initial_image={})
        with pytest.raises(TraceError):
            trace.validate()

    def test_validate_rejects_nonpositive_cycles(self):
        trace = make_trace([(WRITE, 0, 5)])
        trace.accesses[0] = Access(WRITE, DATA_WORD, 5, 0)
        with pytest.raises(TraceError):
            trace.validate()

    def test_slice_is_replayable(self):
        trace = rmw_trace(40)
        sub = trace.slice(20, 60)
        sub.validate()
        assert len(sub) == 40

    def test_slice_bounds_checked(self):
        with pytest.raises(TraceError):
            rmw_trace(10).slice(5, 1000)

    def test_counts(self):
        trace = make_trace([(READ, 0), (WRITE, 0, 1), (WRITE, 1, 2)])
        assert trace.counts() == (1, 2)

    def test_footprint(self):
        trace = make_trace([(READ, 0), (WRITE, 0, 1), (WRITE, 5, 2)])
        assert trace.footprint_words == 2


class TestStats:
    def test_read_write_mix(self):
        stats = compute_stats(rmw_trace(100))
        assert stats.reads == stats.writes == 100
        assert stats.read_fraction == pytest.approx(0.5)

    def test_program_idempotent_words_stream(self):
        # A pure read-input/write-output program is entirely W*->R*.
        stats = compute_stats(stream_trace(30))
        assert stats.program_idempotent_words == stats.footprint_words

    def test_program_idempotent_words_rmw(self):
        # Read-modify-write addresses are never Program Idempotent.
        stats = compute_stats(rmw_trace(100, addrs=4))
        assert stats.program_idempotent_words == 0

    def test_prefix_counting(self):
        trace = make_trace([(WRITE, 0, 1), (WRITE, 64, 1), (WRITE, 1, 1)])
        stats = compute_stats(trace, prefix_low_bits=6)
        assert stats.distinct_prefixes == 2
