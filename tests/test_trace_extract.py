"""Tests for ISS trace extraction and live/simulator cross-validation."""

import pytest

from repro.core.config import ClankConfig
from repro.isa.assembler import assemble
from repro.isa.live import LiveClankSystem
from repro.isa.programs import DEMO_PROGRAMS
from repro.isa.trace_extract import extract_trace
from repro.power.schedules import ContinuousPower, ExponentialPower
from repro.sim.simulator import simulate
from repro.trace.access import READ, WRITE


class TestExtraction:
    @pytest.mark.parametrize("name", sorted(DEMO_PROGRAMS))
    def test_extracted_trace_validates(self, name):
        trace = extract_trace(assemble(DEMO_PROGRAMS[name]), name=name)
        trace.validate()
        assert len(trace) > 0
        assert trace.total_cycles > 0

    def test_cycles_match_cpu(self):
        program = assemble(DEMO_PROGRAMS["crc16"])
        trace = extract_trace(program)
        # The trace's cycle total equals the CPU's cycle count (set via
        # final_cycles), covering compute between accesses.
        from repro.isa.live import run_continuous

        _, _, cycles = run_continuous(program)
        assert trace.total_cycles == cycles

    def test_word_values_recorded(self):
        program = assemble(DEMO_PROGRAMS["sum_array"])
        trace = extract_trace(program)
        writes = [a for a in trace.accesses if a.kind == WRITE]
        total_addr = program.symbols["total"] >> 2
        assert any(a.waddr == total_addr and a.value == 858 for a in writes)

    def test_literal_pool_reads_land_in_text(self):
        program = assemble(DEMO_PROGRAMS["sum_array"])
        trace = extract_trace(program)
        text_lo, text_hi = trace.memory_map.text_word_range
        assert any(
            a.kind == READ and text_lo <= a.waddr < text_hi
            for a in trace.accesses
        ), "ldr rt, =imm must produce text-segment data reads"


class TestCrossValidation:
    @pytest.mark.parametrize("name", sorted(DEMO_PROGRAMS))
    def test_program_checkpoints_agree(self, name):
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        program = assemble(DEMO_PROGRAMS[name])
        live = LiveClankSystem(program, config, ContinuousPower()).run()
        trace = extract_trace(program, name=name)
        sim = simulate(trace, config, ContinuousPower(), verify=True)
        live_c = sum(v for k, v in live.checkpoints.items() if k != "final")
        sim_c = sum(v for k, v in sim.checkpoints_by_cause.items() if k != "final")
        assert abs(live_c - sim_c) <= max(2, 0.15 * max(live_c, sim_c))

    def test_extracted_trace_survives_power_cycling(self):
        trace = extract_trace(assemble(DEMO_PROGRAMS["bubble_sort"]))
        result = simulate(
            trace,
            ClankConfig.from_tuple((4, 2, 1, 0)),
            ExponentialPower(800, seed=5),
            progress_watchdog=300,
            verify=True,
        )
        assert result.verified
