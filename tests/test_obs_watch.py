"""The live sweep watcher's pure pieces (:mod:`repro.obs.watch`).

WatchState folding (row-weighted engine/tier mixes, header/footer,
server-stats snapshots), the sliding-window RateMeter, the incremental
LedgerFollower (missing file, partial trailing line, rewrite detection),
the render block, and the ledger streaming hook it tails
(:meth:`RunLedger.stream_to`).
"""

import io
import json

from repro.obs.telemetry import RunLedger, RunRecord
from repro.obs.watch import (
    LedgerFollower,
    RateMeter,
    WatchState,
    render,
    watch_ledger,
)


def _run_line(engine="fast", rows=1, tier="off", driver="fig5"):
    return {"type": "run", "engine": engine, "rows": rows,
            "result_cache": tier, "driver": driver}


class TestWatchState:
    def test_folds_runs_row_weighted(self):
        state = WatchState()
        state.apply_line(_run_line(engine="fast", rows=1))
        state.apply_line(_run_line(engine="batch", rows=24, tier="memory"))
        state.apply_line(_run_line(engine="fast", rows=1, driver="fig8"))
        assert state.runs == 3 and state.rows == 26
        assert state.engines == {"fast": 2, "batch": 24}
        assert state.tiers == {"off": 2, "memory": 24}
        assert state.drivers == ["fig5", "fig8"]
        assert not state.done

    def test_header_footer_and_driver_lines(self):
        state = WatchState()
        state.apply_line({"type": "sweep_start", "version": 1})
        state.apply_line({"type": "driver", "name": "fig5"})
        assert state.header and state.drivers == ["fig5"]
        state.apply_line({"type": "sweep_end", "runs": 9, "rows": 12})
        assert state.done

    def test_server_stats_snapshot_is_absolute(self):
        state = WatchState()
        state.apply_line(_run_line())  # replaced, not accumulated
        state.apply_server_stats({"server": {
            "jobs": 7, "tiers": {"computed": 4, "memory": 3},
        }})
        assert state.runs == 7 and state.rows == 7
        assert state.engines == {"served": 7}
        assert state.tiers == {"computed": 4, "memory": 3}


class TestRateMeter:
    def test_rate_over_window(self):
        m = RateMeter(window_s=10.0)
        m.sample(0, now=0.0)
        m.sample(50, now=5.0)
        assert m.rate() == 10.0

    def test_old_samples_fall_out_of_window(self):
        m = RateMeter(window_s=2.0)
        m.sample(0, now=0.0)
        m.sample(10, now=1.0)
        m.sample(10, now=10.0)  # long stall: the old burst expires
        m.sample(10, now=11.0)
        assert m.rate() == 0.0

    def test_fewer_than_two_samples(self):
        m = RateMeter()
        assert m.rate() == 0.0
        m.sample(5, now=1.0)
        assert m.rate() == 0.0


class TestLedgerFollower:
    def test_missing_file_yields_nothing(self, tmp_path):
        follower = LedgerFollower(str(tmp_path / "absent.jsonl"))
        assert follower.poll() == []

    def test_incremental_reads(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        follower = LedgerFollower(str(path))
        with open(path, "w") as fh:
            fh.write(json.dumps(_run_line()) + "\n")
        assert len(follower.poll()) == 1
        assert follower.poll() == []
        with open(path, "a") as fh:
            fh.write(json.dumps(_run_line()) + "\n")
        assert len(follower.poll()) == 1

    def test_partial_trailing_line_buffers(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        line = json.dumps(_run_line())
        path.write_bytes((line + "\n" + line[:10]).encode())
        follower = LedgerFollower(str(path))
        assert len(follower.poll()) == 1  # the torn tail waits
        path.write_bytes((line + "\n" + line + "\n").encode())
        assert len(follower.poll()) == 1  # completed on the next poll

    def test_rewrite_restarts_from_top(self, tmp_path):
        """write_jsonl replacing the stream at sweep end shrinks the
        file; the follower must re-read rather than seek past the end."""
        path = tmp_path / "ledger.jsonl"
        long_line = json.dumps(_run_line(driver="x" * 120))
        path.write_text((long_line + "\n") * 3)
        follower = LedgerFollower(str(path))
        assert len(follower.poll()) == 3
        path.write_text(json.dumps(_run_line()) + "\n")
        assert len(follower.poll()) == 1

    def test_bad_json_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('not json\n' + json.dumps(_run_line()) + "\n[1]\n")
        assert len(LedgerFollower(str(path)).poll()) == 1


class TestRender:
    def test_block_shape_and_eta(self):
        state = WatchState()
        state.apply_line(_run_line(engine="fast", rows=10, tier="hit"))
        block = render(state, rate=5.0, expect=110)
        assert "sweep: 1 runs / 10 rows" in block
        assert "5.0 rows/s" in block
        assert "ETA 0:20" in block  # (110-10)/5 = 20s
        assert "engines: fast=10" in block
        assert "cache:   hit=10" in block
        assert "drivers: fig5" in block

    def test_done_uses_footer_totals(self):
        state = WatchState()
        state.apply_line(_run_line())
        state.apply_line({"type": "sweep_end", "runs": 42, "rows": 99})
        block = render(state, rate=0.0)
        assert block.startswith("sweep: 42 runs / 99 rows   DONE")

    def test_empty_state(self):
        block = render(WatchState(), rate=0.0)
        assert "(none yet)" in block


class TestLedgerStreaming:
    def _record(self, i=0):
        return RunRecord(
            index=i, driver="fig5", workload="crc", config=(8, 4, 2, 0),
            engine="fast", rows=1,
        )

    def test_stream_to_appends_live(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        ledger = RunLedger()
        ledger.enable()
        ledger.stream_to(path, header={"experiments": ["fig5"]})
        follower = LedgerFollower(path)
        lines = follower.poll()
        assert lines and lines[0]["type"] == "sweep_start"
        assert lines[0]["streaming"] is True
        ledger.record(self._record(0))
        assert [obj["type"] for obj in follower.poll()] == ["run"]
        ledger.record(self._record(1))
        assert len(follower.poll()) == 1
        ledger.stop_stream()
        ledger.disable()

    def test_write_jsonl_supersedes_stream(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        ledger = RunLedger()
        ledger.enable()
        ledger.stream_to(path)
        ledger.record(self._record(0))
        ledger.write_jsonl(path)
        ledger.disable()
        state = WatchState()
        for obj in LedgerFollower(path).poll():
            state.apply_line(obj)
        assert state.done and state.runs == 1

    def test_watch_once_over_finished_ledger(self, tmp_path):
        path = str(tmp_path / "done.jsonl")
        ledger = RunLedger()
        ledger.enable()
        ledger.record(self._record(0))
        ledger.write_jsonl(path)
        ledger.disable()
        out = io.StringIO()
        assert watch_ledger(path, once=True, out=out) == 0
        assert "DONE" in out.getvalue()
        assert "engines: fast=1" in out.getvalue()
