"""Unit tests for repro.common: word helpers and constants."""

import pytest

from repro.common import words
from repro.common.constants import (
    DEFAULT_AVG_ON_MS,
    DEFAULT_CLOCK_HZ,
    WORD_ADDRESS_BITS,
    cycles_to_ms,
    ms_to_cycles,
)


class TestWordHelpers:
    def test_word_index_drops_two_bits(self):
        assert words.word_index(0) == 0
        assert words.word_index(3) == 0
        assert words.word_index(4) == 1
        assert words.word_index(0x2000_0007) == 0x2000_0004 >> 2

    def test_word_align_down(self):
        assert words.word_align_down(0x1003) == 0x1000
        assert words.word_align_down(0x1004) == 0x1004

    def test_is_word_aligned(self):
        assert words.is_word_aligned(8)
        assert not words.is_word_aligned(9)

    @pytest.mark.parametrize("size,mask", [(1, 0xFF), (2, 0xFFFF), (4, 0xFFFFFFFF)])
    def test_mask_value(self, size, mask):
        assert words.mask_value(0xFFFFFFFFFF, size) == mask

    def test_mask_value_rejects_bad_size(self):
        with pytest.raises(ValueError):
            words.mask_value(1, 3)

    def test_sign_extend_negative(self):
        assert words.sign_extend(0xFF, 8) == -1
        assert words.sign_extend(0x80, 8) == -128

    def test_sign_extend_positive(self):
        assert words.sign_extend(0x7F, 8) == 127
        assert words.sign_extend(5, 32) == 5

    def test_to_u32_wraps(self):
        assert words.to_u32(-1) == 0xFFFFFFFF
        assert words.to_u32(1 << 33) == 0

    def test_insert_extract_roundtrip(self):
        word = 0
        word = words.insert_bytes(word, 0xAB, 0, 1)
        word = words.insert_bytes(word, 0xCD, 3, 1)
        word = words.insert_bytes(word, 0x1234, 1, 2)
        assert words.extract_bytes(word, 0, 1) == 0xAB
        assert words.extract_bytes(word, 3, 1) == 0xCD
        assert words.extract_bytes(word, 1, 2) == 0x1234

    def test_insert_bytes_truncates(self):
        assert words.insert_bytes(0, 0x1FF, 0, 1) == 0xFF


class TestConstants:
    def test_word_address_bits_is_30(self):
        # The paper tracks word addresses: 32 - 2 (Section 3.1.1 fn 2).
        assert WORD_ADDRESS_BITS == 30

    def test_default_on_time_is_100ms(self):
        assert DEFAULT_AVG_ON_MS == 100.0

    def test_ms_cycles_roundtrip(self):
        cycles = ms_to_cycles(100.0)
        assert cycles == DEFAULT_CLOCK_HZ // 10
        assert cycles_to_ms(cycles) == pytest.approx(100.0)
