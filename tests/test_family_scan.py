"""Config-family chain scans must be bit-identical to scalar scans.

The batched family kernel (C ``family_chain_scan`` and its pure-Python
reference ``family_chain_scan_py``) enumerates a whole sweep family's
section tables in one kernel call.  Every test here builds the same
family twice — once through :func:`repro.sim.sections.build_family`
and once config-by-config with family scans disabled — and requires the
fully-materialized section dictionaries to match exactly, across the C
and Python kernels, PI markings, forced-checkpoint resume variants,
ragged member depths, and the output-segment overflow retry.
"""

import itertools

import pytest

from repro.core import cext
from repro.core.config import ClankConfig
from repro.sim import sections
from repro.sim.sections import build_family, clear_cache, get_section_map
from repro.workloads import get_trace


@pytest.fixture(autouse=True)
def _isolate(monkeypatch):
    """Each test starts from an empty SectionMap cache and default env."""
    monkeypatch.delenv("REPRO_FAMILY", raising=False)
    monkeypatch.delenv("REPRO_CEXT", raising=False)
    clear_cache()
    yield
    clear_cache()
    cext.reset_for_tests()


def _grid(rf=(1, 2, 8, 16), wf=(0, 1, 8), wbb=(0, 2), apb=(0, 2)):
    return [ClankConfig.from_tuple(t)
            for t in itertools.product(rf, wf, wbb, apb)]


def _scalar_tables(trace, configs, monkeypatch, **kw):
    """Reference: per-config scalar scans with family passes disabled."""
    monkeypatch.setenv("REPRO_FAMILY", "0")
    clear_cache()
    out = []
    for cfg in configs:
        m = get_section_map(trace, cfg, **kw)
        m.section(0, 0)  # walk the whole canonical chain
        out.append(dict(m._sections))
    monkeypatch.delenv("REPRO_FAMILY")
    clear_cache()
    return out


def _family_tables(trace, configs, **kw):
    maps = build_family(trace, configs, **kw)
    out = []
    for m in maps:
        m.section(0, 0)  # materializes the flat store
        out.append(dict(m._sections))
    return out


def _assert_equal(scalar, family, configs):
    for cfg, a, b in zip(configs, scalar, family):
        assert a == b, cfg


def _set_cext(monkeypatch, enabled):
    monkeypatch.setenv("REPRO_CEXT", "1" if enabled else "0")
    cext.reset_for_tests()
    assert (cext.chain_scan_lib() is not None) == enabled


@pytest.mark.parametrize("use_cext", [True, False],
                         ids=["cext", "python"])
class TestFamilyEquivalence:
    def test_capacity_grid(self, monkeypatch, use_cext):
        _set_cext(monkeypatch, use_cext)
        trace = get_trace("crc", "small")
        grid = _grid()
        scalar = _scalar_tables(trace, grid, monkeypatch)
        family = _family_tables(trace, grid)
        _assert_equal(scalar, family, grid)

    def test_pi_marking(self, monkeypatch, use_cext):
        _set_cext(monkeypatch, use_cext)
        trace = get_trace("crc", "small")
        grid = _grid(rf=(2, 8), wf=(0, 4), wbb=(0, 2), apb=(0, 2))
        pi = frozenset(range(0, trace.compiled().n, 7))
        kw = dict(pi_access_indices=pi)
        scalar = _scalar_tables(trace, grid, monkeypatch, **kw)
        family = _family_tables(trace, grid, **kw)
        _assert_equal(scalar, family, grid)

    def test_forced_resume_variants(self, monkeypatch, use_cext):
        # Forced checkpoints at index 0 and mid-trace exercise the
        # zero-length compiler section and the variant-1 resume, plus
        # the variant-2 direct re-entry after text writes.
        _set_cext(monkeypatch, use_cext)
        trace = get_trace("qsort", "small")
        n = trace.compiled().n
        forced = frozenset({0, n // 3, n // 2})
        grid = _grid(rf=(1, 8), wf=(0, 4), wbb=(0, 2), apb=(0,))
        kw = dict(forced_checkpoints=forced)
        scalar = _scalar_tables(trace, grid, monkeypatch, **kw)
        family = _family_tables(trace, grid, **kw)
        _assert_equal(scalar, family, grid)

    def test_ragged_depths(self, monkeypatch, use_cext):
        # rf=1/wbb=0 fragments into many short sections while rf=24
        # spans the trace in a few — one family, wildly different
        # member depths.
        _set_cext(monkeypatch, use_cext)
        trace = get_trace("fft", "small")
        grid = [ClankConfig.from_tuple(t)
                for t in ((1, 0, 0, 0), (1, 1, 1, 0), (4, 4, 4, 4),
                          (24, 8, 4, 0), (16, 0, 2, 2))]
        scalar = _scalar_tables(trace, grid, monkeypatch)
        family = _family_tables(trace, grid)
        _assert_equal(scalar, family, grid)


def test_overflow_retry_is_exact(monkeypatch):
    # Force the kernel's per-member output segments far below the
    # section count so scan() must double-and-retry; the persistent
    # generation write-back keeps the retried results identical.
    if cext.chain_scan_lib() is None:
        pytest.skip("C kernel unavailable")
    trace = get_trace("fft", "small")  # hundreds of sections per member
    grid = _grid(rf=(1, 2), wf=(0, 1), wbb=(0, 2), apb=(0,))
    scalar = _scalar_tables(trace, grid, monkeypatch)
    saved = cext._FAM_PERCAP[0]
    cext._FAM_PERCAP[0] = 4
    try:
        family = _family_tables(trace, grid)
        assert cext._FAM_PERCAP[0] > 4  # the retry actually fired
    finally:
        cext._FAM_PERCAP[0] = saved
    _assert_equal(scalar, family, grid)


def test_single_member_degrades_to_scalar(monkeypatch):
    # A one-config family is a plain chain scan; the family counters
    # must not claim a batched pass for it.
    trace = get_trace("crc", "small")
    before = sections.cache_stats()
    maps = build_family(trace, [ClankConfig.from_tuple((8, 4, 2, 0))])
    maps[0].section(0, 0)
    after = sections.cache_stats()
    assert maps[0]._sections
    assert after["family_passes"] == before["family_passes"]
    assert after["family_maps"] == before["family_maps"]


def test_family_counters_and_cache_population(monkeypatch):
    trace = get_trace("crc", "small")
    grid = _grid(rf=(2, 8), wf=(0, 4), wbb=(0, 2), apb=(0,))
    before = sections.cache_stats()
    build_family(trace, grid)
    after = sections.cache_stats()
    assert after["family_passes"] == before["family_passes"] + 1
    assert after["family_maps"] == before["family_maps"] + len(grid)
    # Every member is now cache-resident: no further scans needed.
    stats0 = sections.cache_stats()
    for cfg in grid:
        get_section_map(trace, cfg)
    stats1 = sections.cache_stats()
    assert stats1["misses"] == stats0["misses"]


def test_repro_family_gate(monkeypatch):
    # REPRO_FAMILY=0 must disable batched passes entirely while leaving
    # build_family usable (it degrades to lazy scalar maps).
    monkeypatch.setenv("REPRO_FAMILY", "0")
    trace = get_trace("crc", "small")
    grid = _grid(rf=(2, 8), wf=(0, 4), wbb=(0,), apb=(0,))
    before = sections.cache_stats()
    maps = build_family(trace, grid)
    after = sections.cache_stats()
    assert after["family_passes"] == before["family_passes"]
    maps[0].section(0, 0)
    assert maps[0]._sections
