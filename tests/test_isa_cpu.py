"""Unit tests for the Thumb-subset CPU: semantics and timing."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, CpuError, DirectMemoryPort
from repro.mem.main_memory import MainMemory


def run_asm(src, max_instructions=100_000, image=None):
    prog = assemble("_start:\n" + src)
    mem = MainMemory(prog.initial_word_image())
    if image:
        for w, v in image.items():
            mem.write_word(w, v)
    cpu = Cpu(prog, DirectMemoryPort(mem))
    cpu.run(max_instructions)
    return cpu, mem, prog


class TestArithmetic:
    def test_movs_sets_nz(self):
        cpu, _, _ = run_asm("    movs r0, #0\n    bkpt\n")
        assert cpu.z and not cpu.n

    def test_adds_carry_and_overflow(self):
        cpu, _, _ = run_asm(
            """
    ldr r0, =0xFFFFFFFF
    movs r1, #1
    adds r0, r0, r1
    bkpt
"""
        )
        assert cpu.regs[0] == 0
        assert cpu.c and cpu.z and not cpu.v

    def test_signed_overflow_sets_v(self):
        cpu, _, _ = run_asm(
            """
    ldr r0, =0x7FFFFFFF
    movs r1, #1
    adds r0, r0, r1
    bkpt
"""
        )
        assert cpu.v and cpu.n and not cpu.c

    def test_subs_carry_is_not_borrow(self):
        cpu, _, _ = run_asm("    movs r0, #5\n    subs r0, #3\n    bkpt\n")
        assert cpu.regs[0] == 2 and cpu.c
        cpu, _, _ = run_asm("    movs r0, #3\n    subs r0, #5\n    bkpt\n")
        assert cpu.regs[0] == 0xFFFFFFFE and not cpu.c

    def test_adcs_chain(self):
        # 64-bit add: 0xFFFFFFFF + 1 with carry into the high word.
        cpu, _, _ = run_asm(
            """
    ldr r0, =0xFFFFFFFF
    movs r1, #0
    movs r2, #1
    movs r3, #0
    adds r0, r0, r2
    adcs r1, r3
    bkpt
"""
        )
        assert cpu.regs[0] == 0 and cpu.regs[1] == 1

    def test_sbcs(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #0
    movs r1, #1
    subs r0, r0, r1      ; borrow: C clear
    movs r2, #5
    movs r3, #0
    sbcs r2, r3          ; 5 - 0 - 1 = 4
    bkpt
"""
        )
        assert cpu.regs[2] == 4

    def test_rsbs(self):
        cpu, _, _ = run_asm("    movs r1, #7\n    rsbs r0, r1\n    bkpt\n")
        assert cpu.regs[0] == 0xFFFFFFF9

    def test_muls(self):
        cpu, _, _ = run_asm(
            "    movs r0, #7\n    movs r1, #6\n    muls r0, r1\n    bkpt\n"
        )
        assert cpu.regs[0] == 42

    def test_logic_ops(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #0xF0
    movs r1, #0x3C
    ands r0, r1
    movs r2, #0xF0
    orrs r2, r1
    movs r3, #0xF0
    eors r3, r1
    movs r4, #0xF0
    bics r4, r1
    mvns r5, r1
    bkpt
"""
        )
        assert cpu.regs[0] == 0x30
        assert cpu.regs[2] == 0xFC
        assert cpu.regs[3] == 0xCC
        assert cpu.regs[4] == 0xC0
        assert cpu.regs[5] == 0xFFFFFFC3

    def test_shifts(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #1
    lsls r0, r0, #31
    movs r1, #0x80
    lsrs r1, r1, #4
    ldr r2, =0x80000000
    asrs r2, r2, #4
    bkpt
"""
        )
        assert cpu.regs[0] == 0x8000_0000
        assert cpu.regs[1] == 0x8
        assert cpu.regs[2] == 0xF800_0000

    def test_shift_by_register(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #1
    movs r1, #8
    lsls r0, r1
    bkpt
"""
        )
        assert cpu.regs[0] == 0x100

    def test_extends(self):
        cpu, _, _ = run_asm(
            """
    ldr r0, =0x1234FF80
    uxtb r1, r0
    sxtb r2, r0
    uxth r3, r0
    sxth r4, r0
    rev r5, r0
    bkpt
"""
        )
        assert cpu.regs[1] == 0x80
        assert cpu.regs[2] == 0xFFFFFF80
        assert cpu.regs[3] == 0xFF80
        assert cpu.regs[4] == 0xFFFFFF80
        assert cpu.regs[5] == 0x80FF3412


class TestMemoryOps:
    def test_word_load_store(self):
        cpu, mem, prog = run_asm(
            """
    ldr r0, =0x20000000
    ldr r1, =0xCAFEBABE
    str r1, [r0]
    ldr r2, [r0]
    bkpt
"""
        )
        assert cpu.regs[2] == 0xCAFEBABE
        assert mem.read_word(0x2000_0000 >> 2) == 0xCAFEBABE

    def test_byte_and_half(self):
        cpu, mem, _ = run_asm(
            """
    ldr r0, =0x20000000
    movs r1, #0xAB
    strb r1, [r0, #1]
    ldrb r2, [r0, #1]
    ldr r3, =0xBEEF
    strh r3, [r0, #2]
    ldrh r4, [r0, #2]
    bkpt
"""
        )
        assert cpu.regs[2] == 0xAB
        assert cpu.regs[4] == 0xBEEF
        assert mem.read_word(0x2000_0000 >> 2) == 0xBEEF_AB00

    def test_register_offset(self):
        cpu, _, _ = run_asm(
            """
    ldr r0, =0x20000000
    movs r1, #8
    movs r2, #77
    str r2, [r0, r1]
    ldr r3, [r0, r1]
    bkpt
"""
        )
        assert cpu.regs[3] == 77

    def test_push_pop_roundtrip(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #1
    movs r1, #2
    push {r0, r1}
    movs r0, #9
    movs r1, #9
    pop {r0, r1}
    bkpt
"""
        )
        assert cpu.regs[0] == 1 and cpu.regs[1] == 2

    def test_stack_pointer_moves(self):
        prog = assemble("_start:\n    push {r0}\n    bkpt\n")
        mem = MainMemory()
        cpu = Cpu(prog, DirectMemoryPort(mem))
        sp0 = cpu.regs[13]
        cpu.run()
        assert cpu.regs[13] == sp0 - 4


class TestControlFlow:
    def test_conditional_branches(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #0
    movs r1, #5
again:
    adds r0, #1
    cmp r0, r1
    bne again
    bkpt
"""
        )
        assert cpu.regs[0] == 5

    def test_signed_conditions(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #0
    subs r0, #1          ; r0 = -1
    movs r2, #0
    cmp r0, #1
    blt less
    movs r2, #99
less:
    bkpt
"""
        )
        assert cpu.regs[2] == 0  # -1 < 1 under signed compare

    def test_unsigned_conditions(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #0
    subs r0, #1          ; 0xFFFFFFFF
    movs r2, #0
    cmp r0, #1
    bhi higher
    movs r2, #99
higher:
    bkpt
"""
        )
        assert cpu.regs[2] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_bl_bx_call_return(self):
        cpu, _, _ = run_asm(
            """
    movs r0, #5
    bl double
    bkpt
double:
    adds r0, r0, r0
    bx lr
"""
        )
        assert cpu.regs[0] == 10

    def test_pop_pc_returns(self):
        cpu, _, _ = run_asm(
            """
    bl fn
    bkpt
fn:
    push {lr}
    movs r0, #3
    pop {pc}
"""
        )
        assert cpu.regs[0] == 3

    def test_halt_state(self):
        cpu, _, _ = run_asm("    bkpt\n")
        assert cpu.halted
        with pytest.raises(CpuError):
            cpu.step()

    def test_bad_pc_raises(self):
        prog = assemble("_start:\n    nop\n")
        cpu = Cpu(prog, DirectMemoryPort(MainMemory()))
        cpu.step()
        with pytest.raises(CpuError):
            cpu.step()  # fell off the end

    def test_instruction_budget(self):
        prog = assemble("_start:\nspin:\n    b spin\n")
        cpu = Cpu(prog, DirectMemoryPort(MainMemory()))
        with pytest.raises(CpuError):
            cpu.run(max_instructions=100)


class TestTiming:
    def cycles_of(self, src):
        cpu, _, _ = run_asm(src)
        return cpu.cycle_count

    def test_m0_plus_costs(self):
        # nop(1) + bkpt(1)
        assert self.cycles_of("    nop\n    bkpt\n") == 2
        # ldr_lit(2) + str(2) + bkpt(1)
        assert self.cycles_of(
            "    ldr r0, =0x20000000\n    str r0, [r0]\n    bkpt\n"
        ) == 5
        # taken branch = 2
        assert self.cycles_of("    b next\nnext:\n    bkpt\n") == 3
        # bl = 3, bx = 2
        assert self.cycles_of("    bl f\n    bkpt\nf:\n    bx lr\n") == 6

    def test_mul_is_32_cycles(self):
        assert self.cycles_of(
            "    movs r0, #2\n    movs r1, #3\n    muls r0, r1\n    bkpt\n"
        ) == 1 + 1 + 32 + 1

    def test_push_cost_scales(self):
        two = self.cycles_of("    push {r0, r1}\n    bkpt\n")
        three = self.cycles_of("    push {r0, r1, r2}\n    bkpt\n")
        assert three == two + 1


class TestCheckpointWords:
    def test_roundtrip(self):
        prog = assemble("_start:\n    movs r0, #7\n    bkpt\n")
        cpu = Cpu(prog, DirectMemoryPort(MainMemory()))
        cpu.step()
        words = cpu.checkpoint_words()
        assert len(words) == 17
        other = Cpu(prog, DirectMemoryPort(MainMemory()))
        other.load_checkpoint_words(words)
        assert other.regs == cpu.regs
        assert (other.n, other.z, other.c, other.v) == (
            cpu.n, cpu.z, cpu.c, cpu.v,
        )
