"""Tests for the undo-logging alternative architecture."""

import pytest

from repro.core.config import ClankConfig, PolicyOptimizations
from repro.power.schedules import ContinuousPower, ExponentialPower, ReplayPower
from repro.sim.undo_log import UndoLogSimulator
from repro.workloads import get_trace

from tests.conftest import make_trace, rmw_trace, stream_trace
from repro.trace.access import READ, WRITE


def run(trace, spec=(4, 2, 0, 0), schedule=None, log_entries=16, **kw):
    schedule = schedule or ExponentialPower(800, seed=5)
    kw.setdefault("progress_watchdog", 300)
    return UndoLogSimulator(
        trace,
        ClankConfig.from_tuple(spec),
        schedule,
        log_entries=log_entries,
        **kw,
    ).run()


class TestCorrectness:
    def test_continuous_run_verifies(self):
        res = run(rmw_trace(100), schedule=ContinuousPower())
        assert res.verified

    def test_violations_logged_not_checkpointed(self):
        trace = rmw_trace(60, addrs=6)
        res = run(trace, schedule=ContinuousPower(), log_entries=64)
        assert res.wbb_words_flushed > 0  # undo entries appended
        assert res.checkpoints_by_cause.get("violation", 0) == 0

    def test_log_overflow_forces_checkpoint(self):
        trace = rmw_trace(200, addrs=12)
        res = run(trace, spec=(16, 8, 0, 0), schedule=ContinuousPower(), log_entries=2)
        assert res.checkpoints_by_cause.get("undo_full", 0) > 0
        assert res.verified

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_power_cycling_rolls_back_correctly(self, seed):
        # The essential property: violating writes hit NV immediately, so
        # recovery *must* apply the undo log; the dynamic verifier catches
        # any failure to do so.
        trace = rmw_trace(150, addrs=5)
        res = run(trace, schedule=ExponentialPower(400, seed=seed))
        assert res.verified

    def test_fixed_short_power_forces_rollbacks(self):
        from repro.power.schedules import FixedPower

        trace = rmw_trace(150, addrs=5)
        res = run(trace, schedule=FixedPower(500))
        assert res.verified
        assert res.power_cycles > 1

    def test_adversarial_failure_points(self):
        trace = make_trace(
            [(READ, 0), (WRITE, 0, 7), (READ, 0), (WRITE, 0, 9), (READ, 0)]
        )
        for cut in range(50, 160, 6):
            res = run(trace, schedule=ReplayPower([cut, 10_000_000]))
            assert res.verified

    @pytest.mark.parametrize("name", ["rc4", "qsort", "sha"])
    def test_real_workloads_verify(self, name):
        trace = get_trace(name, size="tiny")
        res = UndoLogSimulator(
            trace,
            ClankConfig.from_tuple((4, 2, 0, 0)),
            ExponentialPower(3000, seed=9),
            log_entries=32,
            progress_watchdog="auto",
            verify=True,
        ).run()
        assert res.verified

    def test_outputs_still_commit_with_checkpoints(self):
        trace = get_trace("crc", size="tiny")
        res = run(trace, schedule=ContinuousPower(), log_entries=64)
        assert res.checkpoints_by_cause.get("output", 0) == 2
        assert res.verified


class TestTradeoffs:
    def test_fewer_checkpoints_than_clank_on_violation_dense_code(self):
        from repro.sim.simulator import simulate

        trace = rmw_trace(300, addrs=16)
        clank = simulate(
            trace,
            ClankConfig.from_tuple((8, 4, 2, 0)),
            ContinuousPower(),
            verify=False,
        )
        undo = run(trace, spec=(8, 4, 0, 0), schedule=ContinuousPower(),
                   log_entries=64, verify=False)
        assert undo.num_checkpoints < clank.num_checkpoints

    def test_rollback_cost_charged_on_restart(self):
        trace = rmw_trace(200, addrs=6)
        res = run(trace, schedule=ExponentialPower(700, seed=2), log_entries=64)
        # Restart includes log application; with many violations and power
        # cycles, restart cost exceeds the bare routine cost.
        bare = res.power_cycles * 44
        assert res.restart_cycles >= bare

    def test_stream_trace_needs_no_log(self):
        res = run(stream_trace(100), spec=(16, 8, 0, 0),
                  schedule=ContinuousPower(), log_entries=8)
        assert res.wbb_words_flushed == 0
        assert res.verified
