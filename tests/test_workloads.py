"""Workload correctness: every kernel checked against an independent
reference (stdlib, networkx, published vectors, or round-trip inversion),
and every generated trace validated for internal consistency."""

import hashlib
import random
import zlib

import networkx as nx
import pytest

from repro.mem.traced import TracedMemory
from repro.trace.stats import compute_stats
from repro.workloads import get_workload, iter_workloads, mibench2_names, workload_names
from repro.workloads.crypto import (
    aes_encrypt_block,
    aes_expand_key,
    aes_install_tables,
    bf_decrypt,
    bf_encrypt,
    bf_install_boxes,
    rc4_crypt,
    rc4_ksa,
    sha1_digest,
)
from repro.workloads.codecs import (
    _reference_encode,
    adpcm_decode,
    adpcm_install_tables,
    lzfx_compress,
    lzfx_decompress,
    make_compressible,
)
from repro.workloads.data_structures import (
    PatriciaTrie,
    bmh_search,
    dijkstra_build_graph,
    dijkstra_sssp,
    qsort_words,
)
from repro.workloads.math_kernels import (
    CRC32_TABLE,
    crc32_compute,
    crc32_install_table,
    fft_inplace,
    fft_install_twiddles,
)


class TestRegistry:
    def test_23_mibench2_benchmarks(self):
        assert len(mibench2_names()) == 23

    def test_table1_names_present(self):
        for name in ("adpcm_decode", "aes", "basicmath", "crc", "dijkstra",
                     "fft", "limits", "patricia", "qsort", "rc4", "rsa",
                     "sha", "stringsearch", "susan", "vcflags"):
            assert name in mibench2_names()

    def test_ds_registered(self):
        assert "ds" in workload_names()

    def test_unknown_name_raises(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            get_workload("doom")

    def test_unknown_size_raises(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            get_workload("crc").build(size="galactic")


class TestEveryTrace:
    @pytest.mark.parametrize("name", workload_names())
    def test_trace_validates_and_is_deterministic(self, name):
        wl = get_workload(name)
        t1 = wl.build(size="tiny")
        t1.validate()
        t2 = wl.build(size="tiny")
        assert t1.accesses == t2.accesses
        assert t1.checksum == t2.checksum

    @pytest.mark.parametrize("name", workload_names())
    def test_seed_changes_inputs(self, name):
        wl = get_workload(name)
        if name == "limits":
            pytest.skip("limits has no random inputs")
        t1 = wl.build(size="tiny", seed=0)
        t2 = wl.build(size="tiny", seed=1)
        assert t1.accesses != t2.accesses or t1.checksum != t2.checksum

    @pytest.mark.parametrize("name", workload_names())
    def test_emits_output(self, name):
        trace = get_workload(name).build(size="tiny")
        assert compute_stats(trace).output_writes >= 1


class TestCrc:
    def test_table_matches_zlib_semantics(self):
        mem = TracedMemory("t")
        table = crc32_install_table(mem)
        buf = mem.alloc(64, segment="heap")
        data = bytes(range(64))
        mem.init_bytes(buf, data)
        assert crc32_compute(mem, table, buf, 64) == zlib.crc32(data)

    def test_empty_buffer(self):
        mem = TracedMemory("t")
        table = crc32_install_table(mem)
        assert crc32_compute(mem, table, mem.alloc(4, segment="heap"), 0) == 0

    def test_table_is_standard(self):
        assert CRC32_TABLE[1] == 0x77073096
        assert CRC32_TABLE[255] == 0x2D02EF8D


class TestSha:
    @pytest.mark.parametrize("msg", [b"", b"abc", b"a" * 63, b"a" * 64, b"a" * 200])
    def test_matches_hashlib(self, msg):
        mem = TracedMemory("t")
        buf = mem.alloc(max(4, len(msg) + 4), segment="heap")
        h = mem.alloc(20, segment="data")
        w = mem.alloc(320, segment="heap")
        mem.init_bytes(buf, msg)
        sha1_digest(mem, buf, len(msg), h, w)
        digest = b"".join(
            mem.lw(h + 4 * i).to_bytes(4, "big") for i in range(5)
        )
        assert digest == hashlib.sha1(msg).digest()


class TestRc4:
    def test_published_vector(self):
        # Classic vector: key "Key", plaintext "Plaintext".
        mem = TracedMemory("t")
        s = mem.alloc(256, segment="data")
        buf = mem.alloc(12, segment="heap")
        mem.init_bytes(buf, b"Plaintext")
        rc4_ksa(mem, s, b"Key")
        rc4_crypt(mem, s, buf, 9)
        cipher = bytes(mem.lb(buf + i) for i in range(9))
        assert cipher == bytes.fromhex("bbf316e8d940af0ad3")

    def test_involution(self):
        # Encrypting twice with the same key recovers the plaintext.
        mem = TracedMemory("t")
        s = mem.alloc(256, segment="data")
        buf = mem.alloc(32, segment="heap")
        data = bytes(range(32))
        mem.init_bytes(buf, data)
        rc4_ksa(mem, s, b"k3y")
        rc4_crypt(mem, s, buf, 32)
        rc4_ksa(mem, s, b"k3y")
        rc4_crypt(mem, s, buf, 32)
        assert bytes(mem.lb(buf + i) for i in range(32)) == data


class TestAes:
    def test_fips197_vector(self):
        mem = TracedMemory("t")
        sbox = aes_install_tables(mem)
        key = mem.alloc(16, segment="data")
        rk = mem.alloc(176, segment="data")
        state = mem.alloc(16, segment="heap")
        mem.init_bytes(key, bytes(range(16)))
        mem.init_bytes(state, bytes.fromhex("00112233445566778899aabbccddeeff"))
        aes_expand_key(mem, sbox, key, rk)
        aes_encrypt_block(mem, sbox, rk, state)
        cipher = bytes(mem.lb(state + i) for i in range(16))
        assert cipher == bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestBlowfish:
    def test_encrypt_decrypt_roundtrip(self):
        mem = TracedMemory("t")
        p, s = bf_install_boxes(mem, seed=123)
        for lo, hi in [(0, 0), (0xDEADBEEF, 0xCAFEBABE), (1, 0xFFFFFFFF)]:
            e_lo, e_hi = bf_encrypt(mem, p, s, lo, hi)
            d_lo, d_hi = bf_decrypt(mem, p, s, e_lo, e_hi)
            assert (d_lo, d_hi) == (lo, hi)
            assert (e_lo, e_hi) != (lo, hi)

    def test_roundtrip_after_key_schedule(self):
        from repro.workloads.crypto import bf_key_schedule
        mem = TracedMemory("t")
        p, s = bf_install_boxes(mem, seed=123)
        bf_key_schedule(mem, p, s, b"secret key")
        e = bf_encrypt(mem, p, s, 42, 99)
        assert bf_decrypt(mem, p, s, *e) == (42, 99)


class TestRsa:
    def test_modexp_matches_pow(self):
        from repro.workloads.crypto import RsaWorkload, _LIMBS, _load_limbs, _store_limbs, rsa_modexp
        n = RsaWorkload._P * RsaWorkload._Q
        mem = TracedMemory("t")
        base = mem.alloc(2 * _LIMBS, segment="data")
        mod = mem.alloc(2 * _LIMBS, segment="data")
        out = mem.alloc(2 * _LIMBS, segment="data")
        tmp = mem.alloc(2 * 3 * _LIMBS, segment="heap")
        _store_limbs(mem, mod, n)
        for msg, e in [(12345, 65537), (999983, 3), (2, 17)]:
            _store_limbs(mem, base, msg)
            rsa_modexp(mem, base, e, mod, out, tmp)
            assert _load_limbs(mem, out) == pow(msg, e, n)

    def test_primes_are_prime(self):
        from repro.workloads.crypto import RsaWorkload

        def is_prime(v):
            if v < 2:
                return False
            f = 2
            while f * f <= v:
                if v % f == 0:
                    return False
                f += 1
            return True

        assert is_prime(RsaWorkload._P)
        assert is_prime(RsaWorkload._Q)

    def test_encrypt_decrypt_identity(self):
        from repro.workloads.crypto import RsaWorkload
        p, q, e = RsaWorkload._P, RsaWorkload._Q, RsaWorkload._E
        phi = (p - 1) * (q - 1)
        d = pow(e, -1, phi)
        n = p * q
        m = 987654321 % n
        assert pow(pow(m, e, n), d, n) == m


class TestDijkstra:
    def test_matches_networkx(self):
        mem = TracedMemory("t")
        rng = random.Random(42)
        n = 12
        adj = dijkstra_build_graph(mem, rng, n, density=0.35)
        dist = mem.alloc(4 * n, segment="data")
        visited = mem.alloc(4 * n, segment="data")
        dijkstra_sssp(mem, adj, n, 0, dist, visited)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(n):
                w = mem.lw(adj + 4 * (n * i + j))
                if w != 0x3FFFFFFF:
                    graph.add_edge(i, j, weight=w)
        expect = nx.single_source_dijkstra_path_length(graph, 0)
        for v in range(n):
            got = mem.lw(dist + 4 * v)
            if v in expect:
                assert got == expect[v]
            else:
                assert got == 0x3FFFFFFF


class TestQsort:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sorts(self, seed):
        mem = TracedMemory("t")
        rng = random.Random(seed)
        n = 80
        arr = mem.alloc(4 * n, segment="heap")
        stack = mem.alloc(8 * (n + 4), segment="stack")
        values = [rng.getrandbits(30) for _ in range(n)]
        mem.init_words(arr, values)
        qsort_words(mem, arr, n, stack)
        assert mem.load_words(arr, n) == sorted(values)

    def test_already_sorted(self):
        mem = TracedMemory("t")
        arr = mem.alloc(4 * 10, segment="heap")
        stack = mem.alloc(8 * 16, segment="stack")
        mem.init_words(arr, list(range(10)))
        qsort_words(mem, arr, 10, stack)
        assert mem.load_words(arr, 10) == list(range(10))

    def test_duplicates(self):
        mem = TracedMemory("t")
        values = [5, 1, 5, 1, 3, 3, 3, 0]
        arr = mem.alloc(4 * len(values), segment="heap")
        stack = mem.alloc(8 * 16, segment="stack")
        mem.init_words(arr, values)
        qsort_words(mem, arr, len(values), stack)
        assert mem.load_words(arr, len(values)) == sorted(values)


class TestStringsearch:
    @pytest.mark.parametrize("pattern", [b"needle", b"aa", b"xyz", b"h"])
    def test_matches_bytes_find(self, pattern):
        corpus = b"haystack with a needle inside the haystack aaa"
        mem = TracedMemory("t")
        text = mem.alloc(len(corpus), segment="heap")
        pat = mem.alloc(16, segment="data")
        skip = mem.alloc(256, segment="data")
        mem.init_bytes(text, corpus)
        mem.store_bytes(pat, pattern)
        got = bmh_search(mem, text, len(corpus), pat, len(pattern), skip)
        assert got == corpus.find(pattern)


class TestPatricia:
    def test_insert_lookup(self):
        mem = TracedMemory("t")
        trie = PatriciaTrie(mem, capacity=64)
        rng = random.Random(5)
        keys = {rng.getrandbits(32): i for i, _ in enumerate(range(30))}
        keys = {}
        for i in range(30):
            keys[rng.getrandbits(32)] = i
        for k, v in keys.items():
            trie.insert(k, v)
        for k, v in keys.items():
            assert trie.lookup(k) == v

    def test_lookup_absent(self):
        mem = TracedMemory("t")
        trie = PatriciaTrie(mem, capacity=8)
        trie.insert(0xAABBCCDD, 1)
        assert trie.lookup(0x11223344) == -1

    def test_update_existing(self):
        mem = TracedMemory("t")
        trie = PatriciaTrie(mem, capacity=8)
        trie.insert(7, 1)
        trie.insert(7, 2)
        assert trie.lookup(7) == 2


class TestLzfx:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_roundtrip(self, seed):
        data = make_compressible(random.Random(seed), 600)
        mem = TracedMemory("t")
        src = mem.alloc(len(data), segment="heap")
        dst = mem.alloc(2 * len(data) + 16, segment="heap")
        back = mem.alloc(len(data) + 16, segment="heap")
        htab = mem.alloc(4 * 256, segment="data")
        mem.init_bytes(src, data)
        clen = lzfx_compress(mem, src, len(data), dst, htab)
        assert clen < len(data)  # log-like data compresses
        dlen = lzfx_decompress(mem, dst, clen, back)
        assert dlen == len(data)
        assert bytes(mem.lb(back + i) for i in range(len(data))) == data

    def test_incompressible_data_roundtrips(self):
        data = bytes(random.Random(3).randrange(256) for _ in range(200))
        mem = TracedMemory("t")
        src = mem.alloc(len(data), segment="heap")
        dst = mem.alloc(2 * len(data) + 16, segment="heap")
        back = mem.alloc(len(data) + 16, segment="heap")
        htab = mem.alloc(4 * 256, segment="data")
        mem.init_bytes(src, data)
        clen = lzfx_compress(mem, src, len(data), dst, htab)
        dlen = lzfx_decompress(mem, dst, clen, back)
        assert dlen == len(data)
        assert bytes(mem.lb(back + i) for i in range(len(data))) == data


class TestAdpcm:
    def test_decoder_inverts_reference_encoder(self):
        import math
        samples = []
        for n in range(300):
            v = int(8000 * math.sin(n / 9.0))
            samples.append(v & 0xFFFF)
        encoded = _reference_encode(samples)
        mem = TracedMemory("t")
        step, index = adpcm_install_tables(mem)
        codes = mem.alloc(len(encoded) + 4, segment="heap")
        pcm = mem.alloc(2 * len(samples), segment="heap")
        state = mem.alloc(8, segment="data")
        mem.init_bytes(codes, bytes(encoded))
        adpcm_decode(mem, codes, len(samples), pcm, state, step, index)
        # ADPCM is lossy: decoded output must track the input closely.
        err = 0
        for n, s in enumerate(samples):
            signed = s - 0x10000 if s & 0x8000 else s
            got = mem.lh(pcm + 2 * n)
            got = got - 0x10000 if got & 0x8000 else got
            err += abs(got - signed)
        assert err / len(samples) < 600

    def test_workload_encoder_matches_reference(self):
        trace_enc = get_workload("adpcm_encode").build(size="tiny")
        trace_enc.validate()  # the in-memory encoder ran consistently
        assert trace_enc.checksum != 0


class TestFft:
    def test_forward_inverse_recovers_signal(self):
        mem = TracedMemory("t")
        n = 64
        table = fft_install_twiddles(mem, n)
        re = mem.alloc(4 * n, segment="heap")
        im = mem.alloc(4 * n, segment="heap")
        rng = random.Random(8)
        signal = [rng.randrange(-2000, 2000) for _ in range(n)]
        mem.init_words(re, [v & 0xFFFFFFFF for v in signal])
        mem.init_words(im, [0] * n)
        fft_inplace(mem, re, im, n, table, inverse=False)
        fft_inplace(mem, re, im, n, table, inverse=True)
        for i, expect in enumerate(signal):
            got = mem.lw(re + 4 * i)
            got = got - (1 << 32) if got & 0x80000000 else got
            assert abs(got - expect) <= max(8, abs(expect) // 50)

    def test_impulse_spectrum_is_flat(self):
        mem = TracedMemory("t")
        n = 16
        table = fft_install_twiddles(mem, n)
        re = mem.alloc(4 * n, segment="heap")
        im = mem.alloc(4 * n, segment="heap")
        mem.init_words(re, [1024] + [0] * (n - 1))
        mem.init_words(im, [0] * n)
        fft_inplace(mem, re, im, n, table)
        for i in range(n):
            got = mem.lw(re + 4 * i)
            got = got - (1 << 32) if got & 0x80000000 else got
            assert abs(got - 1024) <= 4
