"""Tests for the ablation experiment drivers."""

import pytest

from repro.core.watchdogs import ProgressWatchdog
from repro.eval import ablation_apb, ablation_compiler, ablation_progress
from repro.eval.settings import EvalSettings

QUICK = EvalSettings(size="small", sweep_size="tiny", seed=3)


class TestProgressWatchdogAdaptiveFlag:
    def test_fixed_never_halves(self):
        wdt = ProgressWatchdog(1000, adaptive=False)
        for _ in range(6):
            wdt.on_restart()
        assert wdt.nv_load_value == 1000

    def test_adaptive_halves(self):
        wdt = ProgressWatchdog(1000, adaptive=True)
        for _ in range(4):
            wdt.on_restart()
        assert wdt.nv_load_value < 1000


class TestProgressAblation:
    def test_adaptive_survives_all_runt_supply(self):
        rows = ablation_progress.run(QUICK)
        worst = rows[-1]
        assert worst.runt_fraction == 1.0
        # Without the watchdog the run stalls; the adaptive design makes
        # forward progress (the paper's motivating scenario).
        assert worst.overhead["off"] is None
        assert worst.overhead["adaptive"] is not None

    def test_no_runts_all_equal(self):
        rows = ablation_progress.run(QUICK)
        clean = rows[0]
        assert clean.runt_fraction == 0.0
        values = [clean.overhead[v] for v in ablation_progress.VARIANTS]
        assert all(v is not None for v in values)
        assert max(values) - min(values) < 0.05

    def test_render(self):
        text = ablation_progress.render(ablation_progress.run(QUICK))
        assert "stalled" in text and "adaptive" in text


class TestCompilerAblation:
    def test_epoch_coverage_dominates(self):
        rows = ablation_compiler.run(QUICK)
        assert len(rows) == 23
        for r in rows:
            assert r.coverage["epoch"] >= r.coverage["whole-program"] - 1e-9
            assert r.coverage["none"] == 0.0

    def test_marking_reduces_average_overhead(self):
        rows = ablation_compiler.run(QUICK)
        avg = lambda v: sum(r.checkpoint_overhead[v] for r in rows) / len(rows)
        assert avg("whole-program") <= avg("none") + 1e-9
        assert "average coverage" in ablation_compiler.render(rows)


class TestApbAblation:
    def test_rows_and_tradeoff(self):
        rows = ablation_apb.run(QUICK)
        assert [r.prefix_low_bits for r in rows] == [4, 6, 8]
        # Storage grows with the low-bit width...
        bits = [r.buffer_bits for r in rows]
        assert bits == sorted(bits)
        # ...and prefix pressure (checkpoint overhead) shrinks.
        assert rows[0].avg_checkpoint_overhead >= rows[-1].avg_checkpoint_overhead
        assert "low bits" in ablation_apb.render(rows)
