"""Run-provenance telemetry: records, determinism, non-interference.

The contract under test (see :mod:`repro.obs.telemetry`):

* one record per run at the dispatch point, carrying engine / typed
  fallback reason / kernel / cache-tier outcome;
* a sweep's ledger is identical at any worker count, modulo the
  wall-time fields (``wall_s``, ``t_start``, ``worker``);
* enabling the ledger never changes which engine runs or what it
  returns;
* the ledger's engine counts reconcile exactly with the fast-path
  dispatch counters and the disk-cache hit counts.
"""

import dataclasses
import json

import pytest

import repro.cache as artifact_cache
from repro.core.config import ClankConfig
from repro.eval.parallel import SimJob, run_jobs
from repro.eval.settings import EvalSettings
from repro.obs import telemetry
from repro.obs.telemetry import LEDGER, FallbackReason, RunRecord
from repro.sim import fast, sections
from repro.sim.fast import dispatch_stats, fast_stats, simulate_fast
from repro.workloads.cache import get_trace

QUICK = EvalSettings(size="small", sweep_size="tiny", seed=2)

WORKLOADS = ("crc", "qsort")
CONFIGS = ((1, 0, 0, 0), (8, 4, 2, 0))
SALTS = (0, 1)


def grid_jobs():
    return [
        SimJob(workload=w, config=c, size="tiny", salt=s)
        for w in WORKLOADS
        for c in CONFIGS
        for s in SALTS
    ]


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    """Every test gets a quiet ledger, fresh counters, and no disk cache."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    artifact_cache.reset_for_tests()
    LEDGER.disable()
    LEDGER.reset()
    fast.reset_dispatch_stats()
    yield
    LEDGER.disable()
    LEDGER.reset()
    fast.reset_dispatch_stats()
    artifact_cache.reset_for_tests()
    artifact_cache.reset_stats()


class TestRunRecord:
    def test_dict_round_trip(self):
        rec = RunRecord(
            workload="crc", config="8,4,2,0", engine="fast", kernel="c",
            size="tiny", salt=3, driver="fig5", wall_s=0.25,
            t_start=1.5, worker=1234, index=7,
        )
        d = rec.to_dict()
        assert d["type"] == "run"
        assert RunRecord.from_dict(d) == rec

    def test_from_dict_ignores_unknown_fields(self):
        rec = RunRecord.from_dict(
            {"type": "run", "workload": "crc", "config": "1,0,0,0",
             "engine": "fast", "added_in_v2": "ignored"}
        )
        assert rec.workload == "crc"

    def test_stable_dict_drops_wall_time_fields(self):
        rec = RunRecord(
            workload="crc", config="1,0,0,0", engine="fast",
            wall_s=0.5, t_start=2.0, worker=999,
        )
        stable = rec.stable_dict()
        for key in telemetry.WALL_TIME_FIELDS:
            assert key not in stable
        assert stable["workload"] == "crc"


class TestRunLedger:
    def test_disabled_record_is_a_noop(self):
        LEDGER.record(RunRecord(workload="w", config="c", engine="fast"))
        assert LEDGER.records == []

    def test_record_assigns_submission_index(self):
        LEDGER.enable()
        for _ in range(3):
            LEDGER.record(RunRecord(workload="w", config="c", engine="fast"))
        assert [r.index for r in LEDGER.records] == [0, 1, 2]

    def test_driver_phase_tags_records_and_marks(self):
        LEDGER.enable()
        with LEDGER.driver_phase("fig9"):
            LEDGER.record(RunRecord(workload="w", config="c", engine="fast",
                                    driver=LEDGER.driver))
        assert LEDGER.records[0].driver == "fig9"
        assert LEDGER.driver is None
        [mark] = LEDGER.driver_marks
        assert mark["name"] == "fig9"
        assert mark["t1"] >= mark["t0"]

    def test_counts(self):
        LEDGER.enable()
        LEDGER.record(RunRecord(workload="a", config="c", engine="fast",
                                kernel="c"))
        LEDGER.record(RunRecord(workload="b", config="c", engine="reference",
                                fallback_reason="verify"))
        assert LEDGER.engine_counts() == {"fast": 1, "reference": 1}
        assert LEDGER.fallback_counts() == {"verify": 1}
        assert LEDGER.kernel_counts() == {"c": 1}
        assert LEDGER.result_cache_counts() == {"off": 2}


class TestLedgerFile:
    def _populate(self):
        LEDGER.enable()
        with LEDGER.driver_phase("fig5"):
            LEDGER.record(RunRecord(workload="crc", config="1,0,0,0",
                                    engine="fast", kernel="c",
                                    driver=LEDGER.driver))

    def test_write_read_round_trip(self, tmp_path):
        self._populate()
        path = str(tmp_path / "ledger.jsonl")
        LEDGER.write_jsonl(path, header={"jobs": 2}, footer={"wall_clock_s": 1})
        loaded = telemetry.read_ledger(path)
        assert loaded.header["jobs"] == 2
        assert loaded.header["version"] == 1
        assert loaded.footer["wall_clock_s"] == 1
        assert loaded.footer["engines"] == {"fast": 1}
        assert [m["name"] for m in loaded.drivers] == ["fig5"]
        assert loaded.stable_records() == LEDGER.stable_records()

    def test_read_rejects_event_logs_with_line_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "power_failure", "t": 3}\n')
        with pytest.raises(ValueError, match="events.jsonl:1"):
            telemetry.read_ledger(str(path))

    def test_read_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "sweep_start", "version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="broken.jsonl:2"):
            telemetry.read_ledger(str(path))

    def test_is_ledger_file(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text('{"type": "sweep_start", "version": 1}\n')
        events = tmp_path / "events.jsonl"
        events.write_text('{"kind": "power_failure"}\n')
        assert telemetry.is_ledger_file(str(ledger))
        assert not telemetry.is_ledger_file(str(events))
        assert not telemetry.is_ledger_file(str(tmp_path / "missing.jsonl"))


class TestDispatchCounters:
    def _run(self, verify=False):
        trace = get_trace("crc", size="tiny")
        config = ClankConfig.from_tuple((8, 4, 2, 0))
        return simulate_fast(trace, config, QUICK.schedule(0), verify=verify)

    def test_fast_run_ticks_fast_and_sets_last(self):
        self._run()
        stats = dispatch_stats()
        assert stats["fast"] == 1
        assert stats["fallback"] == 0
        assert fast.last_dispatch() == ("fast", None)

    def test_verify_fallback_is_typed(self):
        self._run(verify=True)
        stats = dispatch_stats()
        assert stats["reasons"][FallbackReason.VERIFY.value] == 1
        assert stats["fallback"] == 1
        assert fast.last_dispatch() == ("reference", "verify")

    def test_fast_stats_is_backward_compatible(self):
        self._run()
        self._run(verify=True)
        assert fast_stats() == {"fast": 1, "fallback": 1}

    def test_merge_dispatch_stats(self):
        self._run()
        fast.merge_dispatch_stats({"fast": 2, "reasons": {"verify": 3}})
        stats = dispatch_stats()
        assert stats["fast"] == 3
        assert stats["reasons"]["verify"] == 3


class TestSweepTelemetry:
    @pytest.mark.slow
    def test_ledger_deterministic_across_worker_counts(self):
        """The tentpole contract: jobs=1 and jobs=4 produce identical
        ledgers modulo the wall-time fields."""
        jobs = grid_jobs()
        LEDGER.reset()
        LEDGER.enable()
        run_jobs(jobs, QUICK, n_workers=1)
        serial = LEDGER.stable_records()
        LEDGER.reset()
        run_jobs(jobs, QUICK, n_workers=4)
        pooled = LEDGER.stable_records()
        assert len(serial) == len(jobs)
        assert serial == pooled

    @pytest.mark.slow
    def test_telemetry_never_flips_engine_decisions(self):
        """Same jobs with the ledger off and on: identical results and
        identical dispatch deltas."""
        jobs = grid_jobs()
        off = run_jobs(jobs, QUICK, n_workers=2)
        stats_off = dispatch_stats()
        fast.reset_dispatch_stats()
        LEDGER.reset()
        LEDGER.enable()
        on = run_jobs(jobs, QUICK, n_workers=2)
        stats_on = dispatch_stats()
        assert [r.to_dict() for r in off] == [r.to_dict() for r in on]
        assert stats_off == stats_on
        assert [r.engine for r in LEDGER.records].count("fast") == \
            stats_on["fast"]

    def test_ledger_reconciles_with_dispatch_stats(self):
        jobs = grid_jobs()
        LEDGER.enable()
        run_jobs(jobs, QUICK, n_workers=1)
        stats = dispatch_stats()
        engines = LEDGER.engine_counts()
        assert engines.get("fast", 0) == stats["fast"]
        assert engines.get("reference", 0) == stats["fallback"]
        assert sum(engines.values()) == len(jobs)

    def test_records_carry_kernel_and_salt(self):
        LEDGER.enable()
        run_jobs(grid_jobs()[:2], QUICK, n_workers=1)
        for rec in LEDGER.records:
            assert rec.size == "tiny"
            if rec.engine == "fast":
                assert rec.kernel in ("c", "python")


class TestDiskCacheProvenance:
    def test_cache_hit_recorded_as_cached_engine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.reset_for_tests()
        sections.clear_cache()
        jobs = grid_jobs()[:2]
        try:
            LEDGER.enable()
            run_jobs(jobs, QUICK, n_workers=1)
            artifact_cache.persist_caches()
            cold = [(r.engine, r.result_cache) for r in LEDGER.records]
            assert all(cache == "miss" for _, cache in cold)

            LEDGER.reset()
            warm = run_jobs(jobs, QUICK, n_workers=1)
            hits = [(r.engine, r.result_cache) for r in LEDGER.records]
            assert hits == [("disk-cached-result", "hit")] * len(jobs)
            assert all(r is not None for r in warm)
            # Ledger reconciliation: cached runs never tick dispatch.
            stats = artifact_cache.stats()
            assert LEDGER.engine_counts()["disk-cached-result"] <= \
                stats["hits"]
        finally:
            sections.clear_cache()

    def test_verify_runs_bypass_result_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifact_cache.reset_for_tests()
        sections.clear_cache()
        try:
            LEDGER.enable()
            run_jobs(grid_jobs()[:1],
                     dataclasses.replace(QUICK, verify=True), n_workers=1)
            [rec] = LEDGER.records
            assert rec.result_cache == "off"
            assert rec.engine == "reference"
            assert rec.fallback_reason == "verify"
        finally:
            sections.clear_cache()


class TestCliLedger:
    def test_eval_writes_reconciled_ledger(self, tmp_path, capsys):
        """`python -m repro.eval` emits a ledger whose counts reconcile
        with the dispatch counters it prints."""
        from repro.eval.__main__ import main

        path = str(tmp_path / "ledger.jsonl")
        assert main(["table3", "--quick", "--ledger", path]) == 0
        out = capsys.readouterr().out
        assert "[ledger:" in out
        loaded = telemetry.read_ledger(path)
        assert loaded.header["experiments"] == ["table3"]
        assert loaded.footer["runs"] == len(loaded.records) > 0
        dispatch = loaded.footer["dispatch"]
        engines = loaded.footer["engines"]
        assert engines.get("fast", 0) == dispatch["fast"]
        assert engines.get("reference", 0) == dispatch["fallback"]
        assert [m["name"] for m in loaded.drivers] == ["table3"]
        # The shared ledger is switched back off after the CLI run.
        assert not LEDGER.enabled

    def test_quick_run_without_flag_writes_no_ledger(self, tmp_path,
                                                     monkeypatch, capsys):
        from repro.eval.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["table3", "--quick"]) == 0
        assert not (tmp_path / "results").exists()


class TestActiveKernel:
    def test_reports_a_known_kernel(self):
        assert telemetry.active_kernel() in ("c", "python")

    def test_memoized_value_can_be_reset(self):
        first = telemetry.active_kernel()
        telemetry.reset_active_kernel_cache()
        assert telemetry.active_kernel() == first
